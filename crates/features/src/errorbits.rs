//! Error-bit (DQ / beat) statistics over a DIMM's CEs — the raw material of
//! the paper's Fig. 5 analysis and of the error-bit feature family.

use mfp_dram::event::CeEvent;
use serde::{Deserialize, Serialize};

/// Aggregate DQ/beat statistics over a set of CE transfers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ErrorBitStats {
    /// Number of CEs aggregated.
    pub events: u32,
    /// Maximum distinct erroneous DQ lanes in one CE.
    pub max_dq_count: u32,
    /// Mean distinct erroneous DQ lanes per CE.
    pub mean_dq_count: f32,
    /// Maximum distinct erroneous beats in one CE.
    pub max_beat_count: u32,
    /// Mean distinct erroneous beats per CE.
    pub mean_beat_count: f32,
    /// Maximum DQ interval (max - min erroneous lane) in one CE.
    pub max_dq_interval: u32,
    /// Maximum beat interval in one CE.
    pub max_beat_interval: u32,
    /// Maximum erroneous bits in one CE.
    pub max_bits: u32,
    /// CEs with >= 2 DQs *and* >= 2 beats (complex patterns).
    pub complex_events: u32,
    /// CEs whose beat interval is exactly 4 (the Purley risk signature).
    pub interval4_events: u32,
    /// CEs with >= 4 erroneous DQs (the Whitley risk signature).
    pub wide_dq_events: u32,
    /// CEs with >= 5 erroneous beats (the Whitley risk signature).
    pub many_beat_events: u32,
    /// Maximum devices touched in one CE.
    pub max_devices: u32,
    /// Union of devices touched across all CEs.
    pub total_devices: u32,
    /// Max distinct DQ lanes accumulated *within one device* across the
    /// whole window (union of error bits, as in Li et al. \[7\]).
    pub union_dev_dq: u32,
    /// Max distinct beats accumulated within one device across the window.
    pub union_dev_beats: u32,
    /// Beat interval (max - min) of the accumulated per-device beat mask.
    pub union_dev_beat_interval: u32,
    /// 1 when some device's accumulated beat mask contains a pair of beats
    /// exactly 4 apart — the Purley risk signature.
    pub union_dev_interval4: u32,
    /// DQ interval of the accumulated per-device DQ mask.
    pub union_dev_dq_interval: u32,
}

impl ErrorBitStats {
    /// Computes statistics over CE events (device counts use `width`).
    pub fn from_ces<'a, I>(ces: I, width: mfp_dram::geometry::DataWidth) -> Self
    where
        I: IntoIterator<Item = &'a CeEvent>,
    {
        let mut s = ErrorBitStats::default();
        let mut dq_sum = 0u64;
        let mut beat_sum = 0u64;
        let mut device_union = 0u32;
        let w = width.dq_per_device() as usize;
        let n_dev = width.devices_per_rank() as usize;
        let mut dev_dq = vec![0u8; n_dev];
        let mut dev_beats = vec![0u8; n_dev];
        for ce in ces {
            let t = &ce.transfer;
            let dq = t.dq_count();
            let beats = t.beat_count();
            s.events += 1;
            dq_sum += dq as u64;
            beat_sum += beats as u64;
            s.max_dq_count = s.max_dq_count.max(dq);
            s.max_beat_count = s.max_beat_count.max(beats);
            s.max_bits = s.max_bits.max(t.bit_count());
            if let Some(i) = t.dq_interval() {
                s.max_dq_interval = s.max_dq_interval.max(i);
            }
            if let Some(i) = t.beat_interval() {
                s.max_beat_interval = s.max_beat_interval.max(i);
                if i == 4 {
                    s.interval4_events += 1;
                }
            }
            if dq >= 2 && beats >= 2 {
                s.complex_events += 1;
            }
            if dq >= 4 {
                s.wide_dq_events += 1;
            }
            if beats >= 5 {
                s.many_beat_events += 1;
            }
            let devs = t.device_count(width);
            s.max_devices = s.max_devices.max(devs);
            device_union |= t.device_mask(width);
            for (beat, dq) in t.iter_bits() {
                let dev = (dq as usize / w).min(n_dev - 1);
                dev_dq[dev] |= 1 << (dq as usize - dev * w);
                dev_beats[dev] |= 1 << beat;
            }
        }
        if s.events > 0 {
            s.mean_dq_count = dq_sum as f32 / s.events as f32;
            s.mean_beat_count = beat_sum as f32 / s.events as f32;
        }
        s.total_devices = device_union.count_ones();
        for dev in 0..n_dev {
            fold_device_union(&mut s, dev_dq[dev], dev_beats[dev]);
        }
        s
    }
}

/// Folds one device's accumulated (DQ mask, beat mask) into the window-union
/// statistics. Shared by the batch path and [`RollingErrorBitStats`] so both
/// evaluate the identical expressions.
fn fold_device_union(s: &mut ErrorBitStats, dqm: u8, bm: u8) {
    if dqm == 0 || bm == 0 {
        return;
    }
    s.union_dev_dq = s.union_dev_dq.max(dqm.count_ones());
    s.union_dev_beats = s.union_dev_beats.max(bm.count_ones());
    s.union_dev_beat_interval = s.union_dev_beat_interval.max(mask_span(bm));
    if bm & (bm >> 4) != 0 {
        s.union_dev_interval4 = 1;
    }
    s.union_dev_dq_interval = s.union_dev_dq_interval.max(mask_span(dqm));
}

/// Per-CE bit geometry derived once from the transfer, so sliding windows
/// can insert/evict the event without re-walking its bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CeBitProfile {
    /// Distinct erroneous DQ lanes.
    pub dq_count: u32,
    /// Distinct erroneous beats.
    pub beat_count: u32,
    /// Total erroneous bits.
    pub bit_count: u32,
    /// DQ interval (`None` for a clean transfer).
    pub dq_interval: Option<u32>,
    /// Beat interval (`None` for a clean transfer).
    pub beat_interval: Option<u32>,
    /// Bitmask of devices with at least one erroneous bit.
    pub device_mask: u32,
    /// `(device, DQ mask within device, beat mask)` per touched device.
    pub dev_bits: Vec<(u8, u8, u8)>,
}

impl CeBitProfile {
    /// Derives the profile of one transfer under the given device width.
    pub fn of(transfer: &mfp_dram::bus::ErrorTransfer, width: mfp_dram::geometry::DataWidth) -> Self {
        let w = width.dq_per_device() as usize;
        let n_dev = width.devices_per_rank() as usize;
        let mut dev_dq = vec![0u8; n_dev];
        let mut dev_beats = vec![0u8; n_dev];
        for (beat, dq) in transfer.iter_bits() {
            let dev = (dq as usize / w).min(n_dev - 1);
            dev_dq[dev] |= 1 << (dq as usize - dev * w);
            dev_beats[dev] |= 1 << beat;
        }
        let dev_bits = (0..n_dev)
            .filter(|&d| dev_dq[d] != 0)
            .map(|d| (d as u8, dev_dq[d], dev_beats[d]))
            .collect();
        CeBitProfile {
            dq_count: transfer.dq_count(),
            beat_count: transfer.beat_count(),
            bit_count: transfer.bit_count(),
            dq_interval: transfer.dq_interval(),
            beat_interval: transfer.beat_interval(),
            device_mask: transfer.device_mask(width),
            dev_bits,
        }
    }
}

/// Sliding maximum over small non-negative integers: a count-per-value
/// histogram whose maximum can be evicted in amortized O(1).
#[derive(Debug, Clone, Default)]
pub struct RollingMax {
    counts: Vec<u32>,
    max: usize,
}

impl RollingMax {
    /// An empty window (maximum 0, matching the batch default).
    pub fn new() -> Self {
        RollingMax::default()
    }

    /// Adds one observation of `v`.
    pub fn insert(&mut self, v: u32) {
        let v = v as usize;
        if v >= self.counts.len() {
            self.counts.resize(v + 1, 0);
        }
        self.counts[v] += 1;
        self.max = self.max.max(v);
    }

    /// Removes one previously inserted observation of `v`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `v` has no live observation.
    pub fn remove(&mut self, v: u32) {
        let v = v as usize;
        debug_assert!(self.counts.get(v).copied().unwrap_or(0) > 0, "removing absent value");
        self.counts[v] -= 1;
        while self.max > 0 && self.counts[self.max] == 0 {
            self.max -= 1;
        }
    }

    /// The current maximum (0 when the window is empty).
    pub fn max(&self) -> u32 {
        self.max as u32
    }
}

/// Incremental [`ErrorBitStats`] over a sliding event window: insertion and
/// eviction are O(bits of the event); [`Self::stats`] reconstructs the exact
/// batch aggregate, including per-device union masks, from per-bit
/// occurrence counts.
#[derive(Debug, Clone)]
pub struct RollingErrorBitStats {
    n_dev: usize,
    events: u32,
    dq_sum: u64,
    beat_sum: u64,
    complex_events: u32,
    interval4_events: u32,
    wide_dq_events: u32,
    many_beat_events: u32,
    max_dq: RollingMax,
    max_beat: RollingMax,
    max_bits: RollingMax,
    max_dq_interval: RollingMax,
    max_beat_interval: RollingMax,
    max_devices: RollingMax,
    /// Events touching each device (windowed union of `device_mask`).
    dev_presence: Vec<u32>,
    /// Per-device, per-DQ-bit live-occurrence counts.
    dev_dq_counts: Vec<[u32; 8]>,
    /// Per-device, per-beat live-occurrence counts.
    dev_beat_counts: Vec<[u32; 8]>,
}

impl RollingErrorBitStats {
    /// An empty window for the given device width.
    pub fn new(width: mfp_dram::geometry::DataWidth) -> Self {
        let n_dev = width.devices_per_rank() as usize;
        RollingErrorBitStats {
            n_dev,
            events: 0,
            dq_sum: 0,
            beat_sum: 0,
            complex_events: 0,
            interval4_events: 0,
            wide_dq_events: 0,
            many_beat_events: 0,
            max_dq: RollingMax::new(),
            max_beat: RollingMax::new(),
            max_bits: RollingMax::new(),
            max_dq_interval: RollingMax::new(),
            max_beat_interval: RollingMax::new(),
            max_devices: RollingMax::new(),
            dev_presence: vec![0; n_dev],
            dev_dq_counts: vec![[0; 8]; n_dev],
            dev_beat_counts: vec![[0; 8]; n_dev],
        }
    }

    /// Adds one CE's profile to the window.
    pub fn insert(&mut self, p: &CeBitProfile) {
        self.events += 1;
        self.dq_sum += p.dq_count as u64;
        self.beat_sum += p.beat_count as u64;
        self.max_dq.insert(p.dq_count);
        self.max_beat.insert(p.beat_count);
        self.max_bits.insert(p.bit_count);
        if let Some(i) = p.dq_interval {
            self.max_dq_interval.insert(i);
        }
        if let Some(i) = p.beat_interval {
            self.max_beat_interval.insert(i);
            if i == 4 {
                self.interval4_events += 1;
            }
        }
        if p.dq_count >= 2 && p.beat_count >= 2 {
            self.complex_events += 1;
        }
        if p.dq_count >= 4 {
            self.wide_dq_events += 1;
        }
        if p.beat_count >= 5 {
            self.many_beat_events += 1;
        }
        self.max_devices.insert(p.device_mask.count_ones());
        let mut m = p.device_mask;
        while m != 0 {
            let d = m.trailing_zeros() as usize;
            m &= m - 1;
            self.dev_presence[d] += 1;
        }
        for &(dev, dqm, bm) in &p.dev_bits {
            let d = dev as usize;
            for b in 0..8 {
                self.dev_dq_counts[d][b] += u32::from((dqm >> b) & 1);
                self.dev_beat_counts[d][b] += u32::from((bm >> b) & 1);
            }
        }
    }

    /// Evicts one previously inserted CE's profile from the window.
    pub fn remove(&mut self, p: &CeBitProfile) {
        debug_assert!(self.events > 0, "evicting from an empty window");
        self.events -= 1;
        self.dq_sum -= p.dq_count as u64;
        self.beat_sum -= p.beat_count as u64;
        self.max_dq.remove(p.dq_count);
        self.max_beat.remove(p.beat_count);
        self.max_bits.remove(p.bit_count);
        if let Some(i) = p.dq_interval {
            self.max_dq_interval.remove(i);
        }
        if let Some(i) = p.beat_interval {
            self.max_beat_interval.remove(i);
            if i == 4 {
                self.interval4_events -= 1;
            }
        }
        if p.dq_count >= 2 && p.beat_count >= 2 {
            self.complex_events -= 1;
        }
        if p.dq_count >= 4 {
            self.wide_dq_events -= 1;
        }
        if p.beat_count >= 5 {
            self.many_beat_events -= 1;
        }
        self.max_devices.remove(p.device_mask.count_ones());
        let mut m = p.device_mask;
        while m != 0 {
            let d = m.trailing_zeros() as usize;
            m &= m - 1;
            self.dev_presence[d] -= 1;
        }
        for &(dev, dqm, bm) in &p.dev_bits {
            let d = dev as usize;
            for b in 0..8 {
                self.dev_dq_counts[d][b] -= u32::from((dqm >> b) & 1);
                self.dev_beat_counts[d][b] -= u32::from((bm >> b) & 1);
            }
        }
    }

    /// The aggregate over the current window, bit-identical to
    /// [`ErrorBitStats::from_ces`] over the same events.
    pub fn stats(&self) -> ErrorBitStats {
        let mut s = ErrorBitStats {
            events: self.events,
            max_dq_count: self.max_dq.max(),
            max_beat_count: self.max_beat.max(),
            max_bits: self.max_bits.max(),
            max_dq_interval: self.max_dq_interval.max(),
            max_beat_interval: self.max_beat_interval.max(),
            complex_events: self.complex_events,
            interval4_events: self.interval4_events,
            wide_dq_events: self.wide_dq_events,
            many_beat_events: self.many_beat_events,
            max_devices: self.max_devices.max(),
            ..ErrorBitStats::default()
        };
        if s.events > 0 {
            s.mean_dq_count = self.dq_sum as f32 / s.events as f32;
            s.mean_beat_count = self.beat_sum as f32 / s.events as f32;
        }
        s.total_devices = self.dev_presence.iter().filter(|&&c| c > 0).count() as u32;
        for d in 0..self.n_dev {
            let dqm = counts_to_mask(&self.dev_dq_counts[d]);
            let bm = counts_to_mask(&self.dev_beat_counts[d]);
            fold_device_union(&mut s, dqm, bm);
        }
        s
    }
}

/// Collapses per-bit live counts back into the union bitmask.
fn counts_to_mask(counts: &[u32; 8]) -> u8 {
    let mut m = 0u8;
    for (b, &c) in counts.iter().enumerate() {
        if c > 0 {
            m |= 1 << b;
        }
    }
    m
}

/// Distance between the lowest and highest set bit of a non-zero mask.
fn mask_span(mask: u8) -> u32 {
    debug_assert!(mask != 0);
    (7 - mask.leading_zeros()) - mask.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::{CellAddr, DimmId};
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::geometry::DataWidth;
    use mfp_dram::time::SimTime;

    fn ce(bits: &[(u8, u8)]) -> CeEvent {
        CeEvent {
            time: SimTime::from_secs(0),
            dimm: DimmId::new(0, 0),
            addr: CellAddr::new(0, 0, 1, 1),
            transfer: ErrorTransfer::from_bits(bits.iter().copied()),
        }
    }

    #[test]
    fn empty_set_is_default() {
        let s = ErrorBitStats::from_ces(std::iter::empty(), DataWidth::X4);
        assert_eq!(s, ErrorBitStats::default());
    }

    #[test]
    fn purley_signature_counts() {
        // 2 DQs, beats {1, 5}: interval 4, complex.
        let events = [ce(&[(1, 20), (5, 21)])];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.max_dq_count, 2);
        assert_eq!(s.max_beat_count, 2);
        assert_eq!(s.max_beat_interval, 4);
        assert_eq!(s.interval4_events, 1);
        assert_eq!(s.complex_events, 1);
        assert_eq!(s.wide_dq_events, 0);
    }

    #[test]
    fn whitley_signature_counts() {
        // A device-wide CE: 4 DQs of device 5 across 5 beats.
        let bits: Vec<(u8, u8)> = (0..5u8)
            .flat_map(|b| (0..4u8).map(move |q| (b, 20 + q)))
            .collect();
        let events = [ce(&bits)];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.max_dq_count, 4);
        assert_eq!(s.max_beat_count, 5);
        assert_eq!(s.wide_dq_events, 1);
        assert_eq!(s.many_beat_events, 1);
        assert_eq!(s.max_devices, 1);
    }

    #[test]
    fn means_average_over_events() {
        let events = [ce(&[(0, 0)]), ce(&[(0, 0), (1, 1), (2, 2)])];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.events, 2);
        assert!((s.mean_dq_count - 2.0).abs() < 1e-6);
        assert!((s.mean_beat_count - 2.0).abs() < 1e-6);
    }

    #[test]
    fn union_accumulates_across_events() {
        // Two single-bit CEs of the same device: individually trivial, but
        // their union shows 2 DQs across beats {1, 5} — interval 4.
        let events = [ce(&[(1, 20)]), ce(&[(5, 21)])];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.max_dq_count, 1, "per-event stats stay trivial");
        assert_eq!(s.union_dev_dq, 2);
        assert_eq!(s.union_dev_beats, 2);
        assert_eq!(s.union_dev_beat_interval, 4);
        assert_eq!(s.union_dev_interval4, 1);
        assert_eq!(s.union_dev_dq_interval, 1);
    }

    #[test]
    fn union_is_per_device_not_global() {
        // Bits on two different devices never merge into one footprint.
        let events = [ce(&[(1, 0)]), ce(&[(5, 40)])];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.union_dev_dq, 1);
        assert_eq!(s.union_dev_interval4, 0);
    }

    #[test]
    fn mask_span_measures_distance() {
        assert_eq!(mask_span(0b0010_0010), 4);
        assert_eq!(mask_span(0b1000_0001), 7);
        assert_eq!(mask_span(0b0000_1000), 0);
    }

    #[test]
    fn device_union_accumulates() {
        let events = [ce(&[(0, 0)]), ce(&[(0, 40)])];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.max_devices, 1);
        assert_eq!(s.total_devices, 2);
    }

    fn assorted_events() -> Vec<CeEvent> {
        vec![
            ce(&[(0, 0)]),
            ce(&[(1, 20), (5, 21)]),
            ce(&[(0, 0), (1, 1), (2, 2)]),
            ce(&[(3, 40), (3, 41), (7, 40)]),
            ce(&[(0, 63), (4, 67), (2, 71)]),
            ce(&[(2, 8), (2, 9), (2, 10), (2, 11), (6, 8)]),
        ]
    }

    #[test]
    fn rolling_matches_batch_on_every_prefix() {
        for width in [DataWidth::X4, DataWidth::X8] {
            let events = assorted_events();
            let mut rolling = RollingErrorBitStats::new(width);
            for k in 0..=events.len() {
                let batch = ErrorBitStats::from_ces(events[..k].iter(), width);
                assert_eq!(rolling.stats(), batch, "prefix {k} ({width:?})");
                if k < events.len() {
                    rolling.insert(&CeBitProfile::of(&events[k].transfer, width));
                }
            }
        }
    }

    #[test]
    fn rolling_matches_batch_under_eviction() {
        for width in [DataWidth::X4, DataWidth::X8] {
            let events = assorted_events();
            let profiles: Vec<CeBitProfile> = events
                .iter()
                .map(|e| CeBitProfile::of(&e.transfer, width))
                .collect();
            // Slide a length-3 window across the sequence.
            let mut rolling = RollingErrorBitStats::new(width);
            for hi in 0..events.len() {
                rolling.insert(&profiles[hi]);
                if hi >= 3 {
                    rolling.remove(&profiles[hi - 3]);
                }
                let lo = (hi + 1).saturating_sub(3);
                let batch = ErrorBitStats::from_ces(events[lo..=hi].iter(), width);
                assert_eq!(rolling.stats(), batch, "window [{lo}, {hi}] ({width:?})");
            }
            // Draining the window returns it to the empty aggregate.
            let lo = events.len().saturating_sub(3);
            for p in &profiles[lo..] {
                rolling.remove(p);
            }
            assert_eq!(rolling.stats(), ErrorBitStats::default());
        }
    }

    #[test]
    fn rolling_max_tracks_eviction() {
        let mut m = RollingMax::new();
        assert_eq!(m.max(), 0);
        m.insert(3);
        m.insert(7);
        m.insert(3);
        assert_eq!(m.max(), 7);
        m.remove(7);
        assert_eq!(m.max(), 3);
        m.remove(3);
        m.remove(3);
        assert_eq!(m.max(), 0);
    }

    #[test]
    fn profile_mirrors_transfer_statistics() {
        let t = ErrorTransfer::from_bits([(1, 20), (5, 21)]);
        let p = CeBitProfile::of(&t, DataWidth::X4);
        assert_eq!(p.dq_count, 2);
        assert_eq!(p.beat_count, 2);
        assert_eq!(p.beat_interval, Some(4));
        assert_eq!(p.device_mask, 1 << 5);
        assert_eq!(p.dev_bits, vec![(5, 0b11, 0b0010_0010)]);
    }
}
