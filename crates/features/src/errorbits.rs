//! Error-bit (DQ / beat) statistics over a DIMM's CEs — the raw material of
//! the paper's Fig. 5 analysis and of the error-bit feature family.

use mfp_dram::event::CeEvent;
use serde::{Deserialize, Serialize};

/// Aggregate DQ/beat statistics over a set of CE transfers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ErrorBitStats {
    /// Number of CEs aggregated.
    pub events: u32,
    /// Maximum distinct erroneous DQ lanes in one CE.
    pub max_dq_count: u32,
    /// Mean distinct erroneous DQ lanes per CE.
    pub mean_dq_count: f32,
    /// Maximum distinct erroneous beats in one CE.
    pub max_beat_count: u32,
    /// Mean distinct erroneous beats per CE.
    pub mean_beat_count: f32,
    /// Maximum DQ interval (max - min erroneous lane) in one CE.
    pub max_dq_interval: u32,
    /// Maximum beat interval in one CE.
    pub max_beat_interval: u32,
    /// Maximum erroneous bits in one CE.
    pub max_bits: u32,
    /// CEs with >= 2 DQs *and* >= 2 beats (complex patterns).
    pub complex_events: u32,
    /// CEs whose beat interval is exactly 4 (the Purley risk signature).
    pub interval4_events: u32,
    /// CEs with >= 4 erroneous DQs (the Whitley risk signature).
    pub wide_dq_events: u32,
    /// CEs with >= 5 erroneous beats (the Whitley risk signature).
    pub many_beat_events: u32,
    /// Maximum devices touched in one CE.
    pub max_devices: u32,
    /// Union of devices touched across all CEs.
    pub total_devices: u32,
    /// Max distinct DQ lanes accumulated *within one device* across the
    /// whole window (union of error bits, as in Li et al. \[7\]).
    pub union_dev_dq: u32,
    /// Max distinct beats accumulated within one device across the window.
    pub union_dev_beats: u32,
    /// Beat interval (max - min) of the accumulated per-device beat mask.
    pub union_dev_beat_interval: u32,
    /// 1 when some device's accumulated beat mask contains a pair of beats
    /// exactly 4 apart — the Purley risk signature.
    pub union_dev_interval4: u32,
    /// DQ interval of the accumulated per-device DQ mask.
    pub union_dev_dq_interval: u32,
}

impl ErrorBitStats {
    /// Computes statistics over CE events (device counts use `width`).
    pub fn from_ces<'a, I>(ces: I, width: mfp_dram::geometry::DataWidth) -> Self
    where
        I: IntoIterator<Item = &'a CeEvent>,
    {
        let mut s = ErrorBitStats::default();
        let mut dq_sum = 0u64;
        let mut beat_sum = 0u64;
        let mut device_union = 0u32;
        let w = width.dq_per_device() as usize;
        let n_dev = width.devices_per_rank() as usize;
        let mut dev_dq = vec![0u8; n_dev];
        let mut dev_beats = vec![0u8; n_dev];
        for ce in ces {
            let t = &ce.transfer;
            let dq = t.dq_count();
            let beats = t.beat_count();
            s.events += 1;
            dq_sum += dq as u64;
            beat_sum += beats as u64;
            s.max_dq_count = s.max_dq_count.max(dq);
            s.max_beat_count = s.max_beat_count.max(beats);
            s.max_bits = s.max_bits.max(t.bit_count());
            if let Some(i) = t.dq_interval() {
                s.max_dq_interval = s.max_dq_interval.max(i);
            }
            if let Some(i) = t.beat_interval() {
                s.max_beat_interval = s.max_beat_interval.max(i);
                if i == 4 {
                    s.interval4_events += 1;
                }
            }
            if dq >= 2 && beats >= 2 {
                s.complex_events += 1;
            }
            if dq >= 4 {
                s.wide_dq_events += 1;
            }
            if beats >= 5 {
                s.many_beat_events += 1;
            }
            let devs = t.device_count(width);
            s.max_devices = s.max_devices.max(devs);
            device_union |= t.device_mask(width);
            for (beat, dq) in t.iter_bits() {
                let dev = (dq as usize / w).min(n_dev - 1);
                dev_dq[dev] |= 1 << (dq as usize - dev * w);
                dev_beats[dev] |= 1 << beat;
            }
        }
        if s.events > 0 {
            s.mean_dq_count = dq_sum as f32 / s.events as f32;
            s.mean_beat_count = beat_sum as f32 / s.events as f32;
        }
        s.total_devices = device_union.count_ones();
        for dev in 0..n_dev {
            let dqm = dev_dq[dev];
            let bm = dev_beats[dev];
            if dqm == 0 || bm == 0 {
                continue;
            }
            s.union_dev_dq = s.union_dev_dq.max(dqm.count_ones());
            s.union_dev_beats = s.union_dev_beats.max(bm.count_ones());
            s.union_dev_beat_interval = s.union_dev_beat_interval.max(mask_span(bm));
            if bm & (bm >> 4) != 0 {
                s.union_dev_interval4 = 1;
            }
            s.union_dev_dq_interval = s.union_dev_dq_interval.max(mask_span(dqm));
        }
        s
    }
}

/// Distance between the lowest and highest set bit of a non-zero mask.
fn mask_span(mask: u8) -> u32 {
    debug_assert!(mask != 0);
    (7 - mask.leading_zeros()) - mask.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::{CellAddr, DimmId};
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::geometry::DataWidth;
    use mfp_dram::time::SimTime;

    fn ce(bits: &[(u8, u8)]) -> CeEvent {
        CeEvent {
            time: SimTime::from_secs(0),
            dimm: DimmId::new(0, 0),
            addr: CellAddr::new(0, 0, 1, 1),
            transfer: ErrorTransfer::from_bits(bits.iter().copied()),
        }
    }

    #[test]
    fn empty_set_is_default() {
        let s = ErrorBitStats::from_ces(std::iter::empty(), DataWidth::X4);
        assert_eq!(s, ErrorBitStats::default());
    }

    #[test]
    fn purley_signature_counts() {
        // 2 DQs, beats {1, 5}: interval 4, complex.
        let events = [ce(&[(1, 20), (5, 21)])];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.max_dq_count, 2);
        assert_eq!(s.max_beat_count, 2);
        assert_eq!(s.max_beat_interval, 4);
        assert_eq!(s.interval4_events, 1);
        assert_eq!(s.complex_events, 1);
        assert_eq!(s.wide_dq_events, 0);
    }

    #[test]
    fn whitley_signature_counts() {
        // A device-wide CE: 4 DQs of device 5 across 5 beats.
        let bits: Vec<(u8, u8)> = (0..5u8)
            .flat_map(|b| (0..4u8).map(move |q| (b, 20 + q)))
            .collect();
        let events = [ce(&bits)];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.max_dq_count, 4);
        assert_eq!(s.max_beat_count, 5);
        assert_eq!(s.wide_dq_events, 1);
        assert_eq!(s.many_beat_events, 1);
        assert_eq!(s.max_devices, 1);
    }

    #[test]
    fn means_average_over_events() {
        let events = [ce(&[(0, 0)]), ce(&[(0, 0), (1, 1), (2, 2)])];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.events, 2);
        assert!((s.mean_dq_count - 2.0).abs() < 1e-6);
        assert!((s.mean_beat_count - 2.0).abs() < 1e-6);
    }

    #[test]
    fn union_accumulates_across_events() {
        // Two single-bit CEs of the same device: individually trivial, but
        // their union shows 2 DQs across beats {1, 5} — interval 4.
        let events = [ce(&[(1, 20)]), ce(&[(5, 21)])];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.max_dq_count, 1, "per-event stats stay trivial");
        assert_eq!(s.union_dev_dq, 2);
        assert_eq!(s.union_dev_beats, 2);
        assert_eq!(s.union_dev_beat_interval, 4);
        assert_eq!(s.union_dev_interval4, 1);
        assert_eq!(s.union_dev_dq_interval, 1);
    }

    #[test]
    fn union_is_per_device_not_global() {
        // Bits on two different devices never merge into one footprint.
        let events = [ce(&[(1, 0)]), ce(&[(5, 40)])];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.union_dev_dq, 1);
        assert_eq!(s.union_dev_interval4, 0);
    }

    #[test]
    fn mask_span_measures_distance() {
        assert_eq!(mask_span(0b0010_0010), 4);
        assert_eq!(mask_span(0b1000_0001), 7);
        assert_eq!(mask_span(0b0000_1000), 0);
    }

    #[test]
    fn device_union_accumulates() {
        let events = [ce(&[(0, 0)]), ce(&[(0, 40)])];
        let s = ErrorBitStats::from_ces(events.iter(), DataWidth::X4);
        assert_eq!(s.max_devices, 1);
        assert_eq!(s.total_devices, 2);
    }
}
