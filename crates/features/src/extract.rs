//! Feature extraction: one fixed-schema vector per (DIMM, evaluation time).
//!
//! The feature families follow §VI of the paper: temporal CE statistics at
//! multiple window sizes, spatial dispersion within the DRAM hierarchy,
//! fault-mode flags from the fault analysis, error-bit (DQ/beat) statistics,
//! and static DIMM configuration (manufacturer, width, frequency, process).

use crate::errorbits::ErrorBitStats;
use crate::fault_analysis::{classify_ces, FaultThresholds, ObservedFaults};
use crate::history::DimmHistory;
use crate::labeling::ProblemConfig;
use mfp_dram::spec::{DieProcess, DimmSpec, Manufacturer};
use mfp_dram::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// The windowed aggregates a feature vector is assembled from.
///
/// Both the batch path ([`extract_features`]) and the streaming path
/// ([`FeatureStream`](crate::stream::FeatureStream)) produce this struct and
/// hand it to the same [`assemble_features`], so any difference between the
/// two extractors is confined to integer aggregate computation — the f32
/// arithmetic is shared and therefore bit-identical by construction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FeatureInputs {
    pub ce_15m: u32,
    pub ce_1h: u32,
    pub ce_6h: u32,
    pub ce_1d: u32,
    pub ce_obs: u32,
    pub storms_1d: u32,
    pub storms_obs: u32,
    pub ce_total: u32,
    pub first_ce: Option<SimTime>,
    pub last_ce: Option<SimTime>,
    pub banks: u32,
    pub rows: u32,
    pub cols: u32,
    pub cells: u32,
    pub max_cell_repeat: u32,
    pub faults: ObservedFaults,
    pub eb: ErrorBitStats,
    pub eb1: ErrorBitStats,
}

/// Number of features produced per sample.
pub const FEATURE_DIM: usize = 62;

/// Features that accumulate over a DIMM's lifetime rather than describing
/// the current window. They drift *by construction* between any two time
/// windows, so distribution-shift monitors must exclude them.
pub const CUMULATIVE_FEATURES: [&str; 2] = ["ce_total", "days_since_first_ce"];

/// Stable feature names, index-aligned with [`extract_features`].
pub fn feature_names() -> Vec<String> {
    let mut names: Vec<String> = vec![
        // Temporal CE statistics.
        "ce_15m", "ce_1h", "ce_6h", "ce_1d", "ce_5d", "storms_1d", "storms_5d", "ce_total",
        "ce_accel", // Recency.
        "days_since_first_ce", "hours_since_last_ce",
        // Spatial dispersion over the observation window.
        "banks_5d", "rows_5d", "cols_5d", "cells_5d", "max_cell_repeat_5d",
        // Fault-mode flags over the whole history.
        "fault_cell", "fault_column", "fault_row", "fault_bank", "fault_single_device",
        "fault_multi_device",
        // Error-bit statistics over the observation window.
        "eb_max_dq", "eb_mean_dq", "eb_max_beat", "eb_mean_beat", "eb_max_dq_interval",
        "eb_max_beat_interval", "eb_max_bits", "eb_complex", "eb_interval4", "eb_wide_dq",
        "eb_many_beat", "eb_max_devices", "eb_total_devices", "eb_complex_frac",
        // Degradation trend: 1-day error-bit statistics and their ratio to
        // the full observation window (severity growth shows up here).
        "eb1_max_bits", "eb1_mean_dq", "eb1_mean_beat", "eb1_complex", "eb1_interval4",
        "eb1_wide_dq", "trend_bits", "trend_complex",
        // Accumulated (window-union) per-device error-bit geometry.
        "ebu_dev_dq", "ebu_dev_beats", "ebu_dev_beat_interval", "ebu_dev_interval4",
        "ebu_dev_dq_interval", "ebu_complex",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    // Static configuration.
    for m in Manufacturer::ALL {
        names.push(format!("mfr_{m}"));
    }
    for p in DieProcess::ALL {
        names.push(format!("process_{p}"));
    }
    names.extend(
        ["width_x8", "freq_norm", "capacity_norm", "ranks"]
            .into_iter()
            .map(String::from),
    );
    debug_assert_eq!(names.len(), FEATURE_DIM);
    names
}

/// Extracts the feature vector for a DIMM at evaluation time `t`.
///
/// Only events strictly before `t` are visible — the function cannot leak
/// the future. Output length is [`FEATURE_DIM`].
pub fn extract_features(
    history: &DimmHistory<'_>,
    spec: &DimmSpec,
    t: SimTime,
    cfg: &ProblemConfig,
    thresholds: &FaultThresholds,
) -> Vec<f32> {
    let inputs = batch_inputs(history, spec, t, cfg, thresholds);
    assemble_features(&inputs, spec, t, cfg)
}

/// Gathers [`FeatureInputs`] by re-scanning the history at `t` — the batch
/// oracle the streaming extractor is validated against.
fn batch_inputs(
    history: &DimmHistory<'_>,
    spec: &DimmSpec,
    t: SimTime,
    cfg: &ProblemConfig,
    thresholds: &FaultThresholds,
) -> FeatureInputs {
    // Spatial dispersion over the observation window.
    let mut banks = BTreeSet::new();
    let mut rows = BTreeSet::new();
    let mut cols = BTreeSet::new();
    let mut cells: BTreeMap<(u8, u8, u32, u16), u32> = BTreeMap::new();
    for ce in history.ces_in_window(t, cfg.observation) {
        let a = ce.addr;
        banks.insert((a.rank, a.bank));
        rows.insert((a.rank, a.bank, a.row));
        cols.insert((a.rank, a.bank, a.col));
        *cells.entry((a.rank, a.bank, a.row, a.col)).or_default() += 1;
    }

    // Fault-mode flags (over a 30-day lookback).
    let lookback = t.saturating_sub(SimDuration::days(30));
    let faults = classify_ces(history.ces_in(lookback, t), spec.width, thresholds);

    FeatureInputs {
        ce_15m: history.ce_count_in_window(t, SimDuration::minutes(15)),
        ce_1h: history.ce_count_in_window(t, SimDuration::hours(1)),
        ce_6h: history.ce_count_in_window(t, SimDuration::hours(6)),
        ce_1d: history.ce_count_in_window(t, SimDuration::days(1)),
        ce_obs: history.ce_count_in_window(t, cfg.observation),
        storms_1d: history.storm_count_in_window(t, SimDuration::days(1)),
        storms_obs: history.storm_count_in_window(t, cfg.observation),
        ce_total: history.ces_in(SimTime::ZERO, t).count() as u32,
        first_ce: history.first_ce(),
        last_ce: history.last_ce_before(t),
        banks: banks.len() as u32,
        rows: rows.len() as u32,
        cols: cols.len() as u32,
        cells: cells.len() as u32,
        max_cell_repeat: cells.values().copied().max().unwrap_or(0),
        faults,
        eb: ErrorBitStats::from_ces(history.ces_in_window(t, cfg.observation), spec.width),
        eb1: ErrorBitStats::from_ces(history.ces_in_window(t, SimDuration::days(1)), spec.width),
    }
}

/// Assembles the feature vector from windowed aggregates — the single place
/// any f32 arithmetic happens, shared by batch and streaming extraction.
pub(crate) fn assemble_features(
    inp: &FeatureInputs,
    spec: &DimmSpec,
    t: SimTime,
    cfg: &ProblemConfig,
) -> Vec<f32> {
    let mut f = Vec::with_capacity(FEATURE_DIM);

    // Temporal CE statistics.
    let obs_days = (cfg.observation.as_days_f64()).max(1.0) as f32;
    let accel = inp.ce_1d as f32 / (inp.ce_obs as f32 / obs_days).max(0.2);
    f.extend([
        inp.ce_15m as f32,
        inp.ce_1h as f32,
        inp.ce_6h as f32,
        inp.ce_1d as f32,
        inp.ce_obs as f32,
        inp.storms_1d as f32,
        inp.storms_obs as f32,
        inp.ce_total as f32,
        accel,
    ]);

    // Recency.
    let days_since_first = inp
        .first_ce
        .and_then(|fc| t.checked_duration_since(fc))
        .map(|d| d.as_days_f64() as f32)
        .unwrap_or(0.0);
    let hours_since_last = inp
        .last_ce
        .and_then(|lc| t.checked_duration_since(lc))
        .map(|d| d.as_hours_f64() as f32)
        .unwrap_or(f32::from(u8::MAX));
    f.extend([days_since_first, hours_since_last]);

    // Spatial dispersion over the observation window.
    f.extend([
        inp.banks as f32,
        inp.rows as f32,
        inp.cols as f32,
        inp.cells as f32,
        inp.max_cell_repeat as f32,
    ]);

    // Fault-mode flags (over a 30-day lookback).
    f.extend(inp.faults.flags().map(|b| b as u8 as f32));

    // Error-bit statistics over the observation window.
    let eb = &inp.eb;
    let complex_frac = if eb.events > 0 {
        eb.complex_events as f32 / eb.events as f32
    } else {
        0.0
    };
    f.extend([
        eb.max_dq_count as f32,
        eb.mean_dq_count,
        eb.max_beat_count as f32,
        eb.mean_beat_count,
        eb.max_dq_interval as f32,
        eb.max_beat_interval as f32,
        eb.max_bits as f32,
        eb.complex_events as f32,
        eb.interval4_events as f32,
        eb.wide_dq_events as f32,
        eb.many_beat_events as f32,
        eb.max_devices as f32,
        eb.total_devices as f32,
        complex_frac,
    ]);

    // One-day error-bit statistics and degradation trend ratios: a fault on
    // its way to a UE produces more erroneous bits per access every day,
    // while stable faults do not.
    let eb1 = &inp.eb1;
    let mean_bits_5d = if eb.events > 0 {
        // total bits unavailable directly; approximate via dq*beat means
        eb.mean_dq_count * eb.mean_beat_count
    } else {
        0.0
    };
    let mean_bits_1d = if eb1.events > 0 {
        eb1.mean_dq_count * eb1.mean_beat_count
    } else {
        0.0
    };
    let trend_bits = mean_bits_1d / mean_bits_5d.max(0.25);
    let complex_frac_1d = if eb1.events > 0 {
        eb1.complex_events as f32 / eb1.events as f32
    } else {
        0.0
    };
    let trend_complex = complex_frac_1d / complex_frac.max(0.05);
    f.extend([
        eb1.max_bits as f32,
        eb1.mean_dq_count,
        eb1.mean_beat_count,
        eb1.complex_events as f32,
        eb1.interval4_events as f32,
        eb1.wide_dq_events as f32,
        trend_bits,
        trend_complex,
    ]);

    // Window-union per-device bit geometry: low-severity faults reveal
    // their (DQ, beat) footprint only across many CEs.
    let ebu_complex = ((eb.union_dev_dq >= 2 && eb.union_dev_beats >= 2) as u8) as f32;
    f.extend([
        eb.union_dev_dq as f32,
        eb.union_dev_beats as f32,
        eb.union_dev_beat_interval as f32,
        eb.union_dev_interval4 as f32,
        eb.union_dev_dq_interval as f32,
        ebu_complex,
    ]);

    // Static configuration.
    for m in Manufacturer::ALL {
        f.push((spec.manufacturer == m) as u8 as f32);
    }
    for p in DieProcess::ALL {
        f.push((spec.process == p) as u8 as f32);
    }
    f.push((spec.width == mfp_dram::geometry::DataWidth::X8) as u8 as f32);
    f.push(spec.frequency.mts() as f32 / 3200.0);
    f.push(spec.capacity_gib as f32 / 64.0);
    f.push(spec.ranks as f32);

    debug_assert_eq!(f.len(), FEATURE_DIM);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::{CellAddr, DimmId};
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::{CeEvent, MemEvent};

    fn ce(t: u64, row: u32, col: u16, bits: &[(u8, u8)]) -> MemEvent {
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(0, 0),
            addr: CellAddr::new(0, 0, row, col),
            transfer: ErrorTransfer::from_bits(bits.iter().copied()),
        })
    }

    fn names_index(name: &str) -> usize {
        feature_names().iter().position(|n| n == name).unwrap()
    }

    #[test]
    fn schema_has_unique_names_and_fixed_dim() {
        let names = feature_names();
        assert_eq!(names.len(), FEATURE_DIM);
        let set: BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "feature names must be unique");
    }

    #[test]
    fn vector_matches_schema_length() {
        let events = [ce(100, 1, 1, &[(0, 0)])];
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        let v = extract_features(
            &h,
            &DimmSpec::default(),
            SimTime::from_secs(200),
            &ProblemConfig::default(),
            &FaultThresholds::default(),
        );
        assert_eq!(v.len(), FEATURE_DIM);
    }

    #[test]
    fn no_future_leakage() {
        // An event after t must not change the features at t.
        let past = vec![ce(100, 1, 1, &[(0, 0)])];
        let mut with_future = past.clone();
        with_future.push(ce(10_000, 2, 2, &[(1, 4), (5, 5)]));
        let t = SimTime::from_secs(5_000);
        let cfg = ProblemConfig::default();
        let th = FaultThresholds::default();
        let spec = DimmSpec::default();

        let r1: Vec<&MemEvent> = past.iter().collect();
        let r2: Vec<&MemEvent> = with_future.iter().collect();
        let v1 = extract_features(&DimmHistory::new(&r1), &spec, t, &cfg, &th);
        let v2 = extract_features(&DimmHistory::new(&r2), &spec, t, &cfg, &th);
        assert_eq!(v1, v2);
    }

    #[test]
    fn window_counts_land_in_right_slots() {
        let t0 = 10 * 86_400u64;
        let events = [
            ce(t0 - 4 * 86_400, 2, 1, &[(0, 0)]), // 4 days ago
            ce(t0 - 3_000, 1, 2, &[(0, 0)]),      // 50 min ago
            ce(t0 - 30, 1, 1, &[(0, 0)]),         // 30 s ago
        ];
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        let v = extract_features(
            &h,
            &DimmSpec::default(),
            SimTime::from_secs(t0),
            &ProblemConfig::default(),
            &FaultThresholds::default(),
        );
        assert_eq!(v[names_index("ce_15m")], 1.0);
        assert_eq!(v[names_index("ce_1h")], 2.0);
        assert_eq!(v[names_index("ce_5d")], 3.0);
        assert_eq!(v[names_index("rows_5d")], 2.0);
        assert_eq!(v[names_index("cols_5d")], 2.0);
    }

    #[test]
    fn signature_features_fire() {
        let t0 = 86_400u64;
        let events = [ce(t0 - 100, 1, 1, &[(1, 20), (5, 21)])];
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        let v = extract_features(
            &h,
            &DimmSpec::default(),
            SimTime::from_secs(t0),
            &ProblemConfig::default(),
            &FaultThresholds::default(),
        );
        assert_eq!(v[names_index("eb_interval4")], 1.0);
        assert_eq!(v[names_index("eb_max_dq")], 2.0);
        assert_eq!(v[names_index("eb_complex")], 1.0);
        assert_eq!(v[names_index("fault_single_device")], 1.0);
    }

    #[test]
    fn static_features_encode_spec() {
        let refs: Vec<&MemEvent> = Vec::new();
        let h = DimmHistory::new(&refs);
        let spec = DimmSpec {
            manufacturer: Manufacturer::C,
            ..Default::default()
        };
        let v = extract_features(
            &h,
            &spec,
            SimTime::from_secs(100),
            &ProblemConfig::default(),
            &FaultThresholds::default(),
        );
        assert_eq!(v[names_index("mfr_Mfr-C")], 1.0);
        assert_eq!(v[names_index("mfr_Mfr-A")], 0.0);
        assert_eq!(v[names_index("ranks")], 2.0);
    }
}
