//! Per-DIMM event history with efficient time-window queries.

use mfp_dram::event::{CeEvent, MemEvent};
use mfp_dram::time::{SimDuration, SimTime};
use std::ops::Range;

/// A DIMM's time-ordered event slice with binary-search window access.
///
/// # Examples
///
/// ```
/// use mfp_features::history::DimmHistory;
/// use mfp_dram::prelude::*;
///
/// let events = vec![MemEvent::Ce(CeEvent {
///     time: SimTime::from_secs(100),
///     dimm: DimmId::new(0, 0),
///     addr: CellAddr::new(0, 0, 1, 1),
///     transfer: ErrorTransfer::from_bits([(0, 0)]),
/// })];
/// let refs: Vec<&MemEvent> = events.iter().collect();
/// let h = DimmHistory::new(&refs);
/// assert_eq!(h.ces_in(SimTime::from_secs(0), SimTime::from_secs(200)).count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DimmHistory<'a> {
    events: &'a [&'a MemEvent],
}

impl<'a> DimmHistory<'a> {
    /// Wraps a time-sorted event slice.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the slice is not time-ordered.
    pub fn new(events: &'a [&'a MemEvent]) -> Self {
        debug_assert!(
            events.windows(2).all(|w| w[0].time() <= w[1].time()),
            "events must be time-ordered"
        );
        DimmHistory { events }
    }

    /// All events.
    pub fn events(&self) -> &'a [&'a MemEvent] {
        self.events
    }

    /// Index of the first event at or after `t`.
    pub fn idx_at(&self, t: SimTime) -> usize {
        self.events.partition_point(|e| e.time() < t)
    }

    /// Events in the half-open interval `[from, to)`.
    pub fn between(&self, from: SimTime, to: SimTime) -> &'a [&'a MemEvent] {
        let lo = self.idx_at(from);
        let hi = self.idx_at(to);
        &self.events[lo..hi]
    }

    /// CE events in `[from, to)`.
    pub fn ces_in(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &'a CeEvent> {
        self.between(from, to).iter().filter_map(|e| e.as_ce())
    }

    /// CE events in the window of length `win` ending at `t` (exclusive).
    pub fn ces_in_window(&self, t: SimTime, win: SimDuration) -> impl Iterator<Item = &'a CeEvent> {
        self.ces_in(t.saturating_sub(win), t)
    }

    /// Number of CE events in the window ending at `t`.
    pub fn ce_count_in_window(&self, t: SimTime, win: SimDuration) -> u32 {
        self.ces_in_window(t, win).count() as u32
    }

    /// Number of storm events in the window ending at `t`.
    pub fn storm_count_in_window(&self, t: SimTime, win: SimDuration) -> u32 {
        self.between(t.saturating_sub(win), t)
            .iter()
            .filter(|e| e.as_storm().is_some())
            .count() as u32
    }

    /// Time of the first UE, if any.
    pub fn first_ue(&self) -> Option<SimTime> {
        self.events.iter().find(|e| e.is_ue()).map(|e| e.time())
    }

    /// Time of the first CE, if any.
    pub fn first_ce(&self) -> Option<SimTime> {
        self.events
            .iter()
            .find(|e| e.as_ce().is_some())
            .map(|e| e.time())
    }

    /// Time of the last CE strictly before `t`, if any.
    pub fn last_ce_before(&self, t: SimTime) -> Option<SimTime> {
        self.events[..self.idx_at(t)]
            .iter()
            .rev()
            .find(|e| e.as_ce().is_some())
            .map(|e| e.time())
    }
}

/// A two-pointer cursor over a time-sorted event slice, tracking the index
/// range `[lo, hi)` of a sliding half-open time window `[from, to)`.
///
/// As long as successive windows are non-decreasing in both bounds (the
/// case for a fixed-length window sliding forward in time), every event
/// enters the range exactly once and leaves it exactly once, so a whole
/// sweep over `n` events costs O(n) pointer moves regardless of how many
/// windows are evaluated. [`FeatureStream`](crate::stream::FeatureStream)
/// keys its per-window rolling state off the ranges this cursor reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCursor {
    lo: usize,
    hi: usize,
}

impl WindowCursor {
    /// A cursor with an empty range at the start of the slice.
    pub fn new() -> Self {
        WindowCursor::default()
    }

    /// Slides the window to `[from, to)` and reports the index ranges of
    /// events that *entered* and *left* the window, in that order.
    ///
    /// Bounds must be non-decreasing across successive calls (the caller
    /// rewinds by recreating the cursor); `from <= to` is required.
    pub fn advance(
        &mut self,
        events: &[&MemEvent],
        from: SimTime,
        to: SimTime,
    ) -> (Range<usize>, Range<usize>) {
        debug_assert!(from <= to, "window bounds inverted");
        let old_hi = self.hi;
        while self.hi < events.len() && events[self.hi].time() < to {
            self.hi += 1;
        }
        let entered = old_hi..self.hi;
        let old_lo = self.lo;
        while self.lo < self.hi && events[self.lo].time() < from {
            self.lo += 1;
        }
        (entered, old_lo..self.lo)
    }

    /// The current `[lo, hi)` index range.
    pub fn range(&self) -> Range<usize> {
        self.lo..self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::{CellAddr, DimmId};
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::{CeStormEvent, UeEvent};

    fn ce(t: u64) -> MemEvent {
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(0, 0),
            addr: CellAddr::new(0, 0, 1, 1),
            transfer: ErrorTransfer::from_bits([(0, 0)]),
        })
    }

    fn ue(t: u64) -> MemEvent {
        MemEvent::Ue(UeEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(0, 0),
            addr: CellAddr::new(0, 0, 1, 1),
            transfer: ErrorTransfer::from_bits([(0, 0), (0, 1)]),
        })
    }

    fn storm(t: u64) -> MemEvent {
        MemEvent::Storm(CeStormEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(0, 0),
            count: 12,
        })
    }

    #[test]
    fn window_queries_count_correctly() {
        let events = [ce(10), ce(50), storm(60), ce(100), ue(150)];
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        assert_eq!(
            h.ce_count_in_window(SimTime::from_secs(101), SimDuration::secs(60)),
            2
        );
        assert_eq!(
            h.ce_count_in_window(SimTime::from_secs(101), SimDuration::secs(10)),
            1
        );
        assert_eq!(
            h.storm_count_in_window(SimTime::from_secs(200), SimDuration::secs(200)),
            1
        );
    }

    #[test]
    fn boundaries_are_half_open() {
        let events = [ce(100)];
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        // [from, to): event at exactly `to` is excluded, at `from` included.
        assert_eq!(
            h.ces_in(SimTime::from_secs(100), SimTime::from_secs(101))
                .count(),
            1
        );
        assert_eq!(
            h.ces_in(SimTime::from_secs(50), SimTime::from_secs(100))
                .count(),
            0
        );
    }

    #[test]
    fn first_and_last_accessors() {
        let events = [ce(10), ce(50), ue(150)];
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        assert_eq!(h.first_ce(), Some(SimTime::from_secs(10)));
        assert_eq!(h.first_ue(), Some(SimTime::from_secs(150)));
        assert_eq!(
            h.last_ce_before(SimTime::from_secs(60)),
            Some(SimTime::from_secs(50))
        );
        assert_eq!(h.last_ce_before(SimTime::from_secs(10)), None);
    }

    #[test]
    fn window_cursor_tracks_sliding_window() {
        let events = [ce(10), ce(50), storm(60), ce(100), ue(150)];
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        let mut cur = WindowCursor::new();
        for t in [5u64, 20, 55, 70, 110, 160, 300] {
            let to = SimTime::from_secs(t);
            let from = to.saturating_sub(SimDuration::secs(60));
            let (entered, left) = cur.advance(&refs, from, to);
            // Every index enters and leaves at most once, in order.
            assert!(entered.end >= entered.start && left.end >= left.start);
            // The range always equals the binary-search answer.
            assert_eq!(cur.range(), h.idx_at(from)..h.idx_at(to));
        }
    }

    #[test]
    fn window_cursor_enter_and_leave_partition_events() {
        let events = [ce(10), ce(50), ce(100), ce(150)];
        let refs: Vec<&MemEvent> = events.iter().collect();
        let mut cur = WindowCursor::new();
        let mut entered_total = 0usize;
        let mut left_total = 0usize;
        for t in (0..40).map(|k| k * 10) {
            let to = SimTime::from_secs(t);
            let from = to.saturating_sub(SimDuration::secs(30));
            let (entered, left) = cur.advance(&refs, from, to);
            entered_total += entered.len();
            left_total += left.len();
        }
        assert_eq!(entered_total, 4, "each event enters exactly once");
        assert_eq!(left_total, 4, "each event leaves exactly once");
        assert!(cur.range().is_empty());
    }

    #[test]
    fn empty_history_is_harmless() {
        let refs: Vec<&MemEvent> = Vec::new();
        let h = DimmHistory::new(&refs);
        assert_eq!(h.first_ce(), None);
        assert_eq!(h.first_ue(), None);
        assert_eq!(
            h.ce_count_in_window(SimTime::from_secs(100), SimDuration::days(5)),
            0
        );
    }
}
