//! The failure-prediction problem formulation (paper §IV, Fig. 3).
//!
//! At evaluation time `t` an algorithm looks back over an observation
//! window `Δt_d` and predicts whether a UE occurs inside the future window
//! `[t + Δt_l, t + Δt_l + Δt_p]`, where `Δt_l` is the lead time needed to
//! act (VM migration etc.) and `Δt_p` the prediction horizon. The paper
//! uses `Δt_d = 5 d`, `Δt_l ∈ (0, 3 h]`, `Δt_p = 30 d`; CE events arrive at
//! minute granularity and predictions are refreshed every few minutes. For
//! a laptop-scale reproduction the refresh interval is a knob
//! ([`ProblemConfig::sample_interval`], default 1 day) — it thins samples
//! without changing the formulation.

use crate::history::DimmHistory;
use mfp_dram::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Windows of the prediction problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProblemConfig {
    /// Historical observation window Δt_d.
    pub observation: SimDuration,
    /// Lead time Δt_l before the prediction window opens.
    pub lead: SimDuration,
    /// Prediction window length Δt_p.
    pub prediction: SimDuration,
    /// Interval between successive evaluation times per DIMM.
    pub sample_interval: SimDuration,
}

impl Default for ProblemConfig {
    fn default() -> Self {
        ProblemConfig {
            observation: SimDuration::days(5),
            lead: SimDuration::hours(3),
            prediction: SimDuration::days(30),
            sample_interval: SimDuration::days(1),
        }
    }
}

impl ProblemConfig {
    /// Label for an evaluation at time `t` given the DIMM's first UE.
    ///
    /// Returns `None` when no sample should be drawn: the DIMM has already
    /// failed, or fails before the lead time elapses (an alarm at `t` could
    /// no longer be acted upon — such instants are excluded from both
    /// classes, following the lead-time semantics of \[38\]).
    pub fn label_at(&self, t: SimTime, first_ue: Option<SimTime>) -> Option<bool> {
        match first_ue {
            None => Some(false),
            Some(ue) => {
                if ue < t + self.lead {
                    None
                } else if ue <= t + self.lead + self.prediction {
                    Some(true)
                } else {
                    Some(false)
                }
            }
        }
    }

    /// Evaluation times for one DIMM: a `sample_interval` grid starting at
    /// its first CE, keeping only instants whose observation window holds
    /// at least one CE and whose label is defined.
    pub fn sample_times(&self, history: &DimmHistory<'_>, horizon: SimDuration) -> Vec<SimTime> {
        let Some(first_ce) = history.first_ce() else {
            return Vec::new();
        };
        let first_ue = history.first_ue();
        let end = SimTime::ZERO + horizon;
        let step = self.sample_interval.as_secs().max(60);
        let mut out = Vec::new();
        // Start one step after the first CE so the observation window is
        // never empty at the first sample.
        let mut t = first_ce + SimDuration::secs(step);
        while t < end {
            if history.ce_count_in_window(t, self.observation) > 0 {
                if let Some(_label) = self.label_at(t, first_ue) {
                    out.push(t);
                } else {
                    break; // DIMM failed (or fails within lead): stop sampling.
                }
            }
            t += SimDuration::secs(step);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::{CellAddr, DimmId};
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::{CeEvent, MemEvent, UeEvent};

    fn cfg() -> ProblemConfig {
        ProblemConfig::default()
    }

    #[test]
    fn label_none_after_failure() {
        let ue = Some(SimTime::from_secs(1000));
        assert_eq!(cfg().label_at(SimTime::from_secs(2000), ue), None);
    }

    #[test]
    fn label_none_within_lead() {
        // UE 1 hour away but lead is 3 hours: too late to act.
        let t = SimTime::ZERO + SimDuration::days(10);
        let ue = Some(t + SimDuration::hours(1));
        assert_eq!(cfg().label_at(t, ue), None);
    }

    #[test]
    fn label_positive_inside_window() {
        let t = SimTime::ZERO + SimDuration::days(10);
        for days in [1u64, 15, 29] {
            let ue = Some(t + SimDuration::hours(3) + SimDuration::days(days));
            assert_eq!(cfg().label_at(t, ue), Some(true), "{days} days out");
        }
    }

    #[test]
    fn label_negative_beyond_window_or_no_ue() {
        let t = SimTime::ZERO + SimDuration::days(10);
        let far = Some(t + SimDuration::hours(3) + SimDuration::days(31));
        assert_eq!(cfg().label_at(t, far), Some(false));
        assert_eq!(cfg().label_at(t, None), Some(false));
    }

    #[test]
    fn boundary_exactly_at_window_end_is_positive() {
        let t = SimTime::ZERO + SimDuration::days(10);
        let ue = Some(t + SimDuration::hours(3) + SimDuration::days(30));
        assert_eq!(cfg().label_at(t, ue), Some(true));
    }

    fn ce(t: u64) -> MemEvent {
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(0, 0),
            addr: CellAddr::new(0, 0, 1, 1),
            transfer: ErrorTransfer::from_bits([(0, 0)]),
        })
    }

    fn ue_ev(t: u64) -> MemEvent {
        MemEvent::Ue(UeEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(0, 0),
            addr: CellAddr::new(0, 0, 1, 1),
            transfer: ErrorTransfer::from_bits([(0, 0), (0, 1)]),
        })
    }

    #[test]
    fn sample_times_follow_activity() {
        // CEs on day 1 only: samples exist while day-1 CEs are in the 5-day
        // observation window, then stop.
        let events = [ce(86_400), ce(86_500)];
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        let times = cfg().sample_times(&h, SimDuration::days(60));
        assert!(!times.is_empty());
        let last = *times.last().unwrap();
        assert!(last <= SimTime::from_secs(86_400) + SimDuration::days(5) + SimDuration::days(1));
        // All sampled instants see at least one CE in the window.
        for &t in &times {
            assert!(h.ce_count_in_window(t, cfg().observation) > 0);
        }
    }

    #[test]
    fn sampling_stops_at_failure() {
        let events = [ce(86_400), ce(2 * 86_400), ue_ev(10 * 86_400)];
        let refs: Vec<&MemEvent> = events.iter().collect();
        let h = DimmHistory::new(&refs);
        let times = cfg().sample_times(&h, SimDuration::days(60));
        assert!(!times.is_empty());
        for &t in &times {
            assert!(
                t + cfg().lead <= SimTime::from_secs(10 * 86_400),
                "sample at {t} too close to the UE"
            );
        }
    }

    #[test]
    fn no_ces_no_samples() {
        let refs: Vec<&MemEvent> = Vec::new();
        let h = DimmHistory::new(&refs);
        assert!(cfg().sample_times(&h, SimDuration::days(60)).is_empty());
    }
}
