//! Fault-mode classification from observed CE history (paper §V).
//!
//! Mirrors the threshold-based definitions of \[12, 29, 30\]: a *cell* fault
//! is repeated CEs at one cell; *row*/*column* faults are CEs spread along
//! one row/column; a *bank* fault combines both within one bank; and the
//! device dimension is read off the error-bit transfers — CEs confined to
//! one device indicate a *single-device* fault, CEs across several devices
//! a *multi-device* fault. A DIMM can carry several labels at once, exactly
//! as in the paper's Fig. 4 methodology.

use crate::history::DimmHistory;
use mfp_dram::address::CellAddr;
use mfp_dram::event::CeEvent;
use mfp_dram::geometry::DataWidth;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Thresholds for classifying fault modes from CEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultThresholds {
    /// Repeated CEs at one cell to call it a cell fault.
    pub cell_repeats: u32,
    /// Distinct columns within one row to call it a row fault.
    pub row_distinct_cols: u32,
    /// Distinct rows within one column to call it a column fault.
    pub col_distinct_rows: u32,
    /// Distinct faulty rows and columns within one bank for a bank fault.
    pub bank_distinct: u32,
}

impl Default for FaultThresholds {
    fn default() -> Self {
        FaultThresholds {
            cell_repeats: 2,
            row_distinct_cols: 2,
            col_distinct_rows: 2,
            bank_distinct: 3,
        }
    }
}

/// Fault-mode labels observed on a DIMM (non-exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ObservedFaults {
    /// Repeated CEs at a single cell.
    pub cell: bool,
    /// CEs across a row.
    pub row: bool,
    /// CEs across a column.
    pub column: bool,
    /// CEs across rows *and* columns of one bank.
    pub bank: bool,
    /// All error bits confined to one DRAM device.
    pub single_device: bool,
    /// Error bits observed on two or more devices.
    pub multi_device: bool,
}

impl ObservedFaults {
    /// Label names in Fig. 4 display order.
    pub const LABELS: [&'static str; 6] =
        ["cell", "column", "row", "bank", "single-device", "multi-device"];

    /// The labels as booleans, in [`Self::LABELS`] order.
    pub fn flags(&self) -> [bool; 6] {
        [
            self.cell,
            self.column,
            self.row,
            self.bank,
            self.single_device,
            self.multi_device,
        ]
    }
}

/// Classifies the fault modes evident in a CE sequence.
pub fn classify_ces<'a, I>(ces: I, width: DataWidth, th: &FaultThresholds) -> ObservedFaults
where
    I: IntoIterator<Item = &'a CeEvent>,
{
    // Spatial aggregation keyed by (rank, bank).
    let mut cell_counts: BTreeMap<(u8, u8, u32, u16), u32> = BTreeMap::new();
    let mut row_cols: BTreeMap<(u8, u8, u32), BTreeSet<u16>> = BTreeMap::new();
    let mut col_rows: BTreeMap<(u8, u8, u16), BTreeSet<u32>> = BTreeMap::new();
    let mut bank_rows: BTreeMap<(u8, u8), BTreeSet<u32>> = BTreeMap::new();
    let mut bank_cols: BTreeMap<(u8, u8), BTreeSet<u16>> = BTreeMap::new();
    let mut devices: u32 = 0;
    let mut any = false;

    for ce in ces {
        any = true;
        let a = ce.addr;
        *cell_counts
            .entry((a.rank, a.bank, a.row, a.col))
            .or_default() += 1;
        row_cols
            .entry((a.rank, a.bank, a.row))
            .or_default()
            .insert(a.col);
        col_rows
            .entry((a.rank, a.bank, a.col))
            .or_default()
            .insert(a.row);
        bank_rows.entry((a.rank, a.bank)).or_default().insert(a.row);
        bank_cols.entry((a.rank, a.bank)).or_default().insert(a.col);
        devices |= ce.transfer.device_mask(width);
    }

    if !any {
        return ObservedFaults::default();
    }

    let cell = cell_counts.values().any(|&c| c >= th.cell_repeats);
    let row = row_cols
        .values()
        .any(|cols| cols.len() as u32 >= th.row_distinct_cols);
    let column = col_rows
        .values()
        .any(|rows| rows.len() as u32 >= th.col_distinct_rows);
    let bank = bank_rows.iter().any(|(key, rows)| {
        rows.len() as u32 >= th.bank_distinct
            && bank_cols
                .get(key)
                .is_some_and(|cols| cols.len() as u32 >= th.bank_distinct)
    });
    let n_devices = devices.count_ones();
    ObservedFaults {
        cell,
        row,
        column,
        bank,
        single_device: n_devices == 1,
        multi_device: n_devices >= 2,
    }
}

/// Per-bank dispersion state of the rolling classifier.
#[derive(Debug, Clone, Default)]
struct BankDispersion {
    rows: HashMap<u32, u32>,
    cols: HashMap<u16, u32>,
}

/// Incremental fault-mode classification over a sliding CE window.
///
/// Maintains the same spatial aggregations as [`classify_ces`] as multisets
/// with eviction, plus counters of how many keys currently satisfy each
/// threshold, so [`Self::classify`] is O(1) and insert/evict are O(1)
/// hash-map updates. Thresholds must be >= 1 (the defaults are).
#[derive(Debug, Clone)]
pub struct RollingFaultClassifier {
    th: FaultThresholds,
    events: u32,
    cells: HashMap<(u8, u8, u32, u16), u32>,
    cell_hits: u32,
    row_cols: HashMap<(u8, u8, u32), HashMap<u16, u32>>,
    row_hits: u32,
    col_rows: HashMap<(u8, u8, u16), HashMap<u32, u32>>,
    col_hits: u32,
    banks: HashMap<(u8, u8), BankDispersion>,
    bank_hits: u32,
    device_events: [u32; 32],
    devices: u32,
}

impl RollingFaultClassifier {
    /// An empty window with the given thresholds.
    pub fn new(th: FaultThresholds) -> Self {
        debug_assert!(
            th.cell_repeats >= 1
                && th.row_distinct_cols >= 1
                && th.col_distinct_rows >= 1
                && th.bank_distinct >= 1,
            "rolling classification requires thresholds >= 1"
        );
        RollingFaultClassifier {
            th,
            events: 0,
            cells: HashMap::new(),
            cell_hits: 0,
            row_cols: HashMap::new(),
            row_hits: 0,
            col_rows: HashMap::new(),
            col_hits: 0,
            banks: HashMap::new(),
            bank_hits: 0,
            device_events: [0; 32],
            devices: 0,
        }
    }

    /// Adds one CE (its cell address and device bitmask) to the window.
    pub fn insert(&mut self, addr: CellAddr, device_mask: u32) {
        let th = self.th;
        self.events += 1;

        let c = self.cells.entry((addr.rank, addr.bank, addr.row, addr.col)).or_insert(0);
        *c += 1;
        if *c == th.cell_repeats {
            self.cell_hits += 1;
        }

        let cols = self.row_cols.entry((addr.rank, addr.bank, addr.row)).or_default();
        let before = cols.len() as u32;
        *cols.entry(addr.col).or_insert(0) += 1;
        if before < th.row_distinct_cols && cols.len() as u32 >= th.row_distinct_cols {
            self.row_hits += 1;
        }

        let rows = self.col_rows.entry((addr.rank, addr.bank, addr.col)).or_default();
        let before = rows.len() as u32;
        *rows.entry(addr.row).or_insert(0) += 1;
        if before < th.col_distinct_rows && rows.len() as u32 >= th.col_distinct_rows {
            self.col_hits += 1;
        }

        let bank = self.banks.entry((addr.rank, addr.bank)).or_default();
        let was_hit = bank_satisfies(bank, th.bank_distinct);
        *bank.rows.entry(addr.row).or_insert(0) += 1;
        *bank.cols.entry(addr.col).or_insert(0) += 1;
        if !was_hit && bank_satisfies(bank, th.bank_distinct) {
            self.bank_hits += 1;
        }

        let mut m = device_mask;
        while m != 0 {
            let d = m.trailing_zeros() as usize;
            m &= m - 1;
            self.device_events[d] += 1;
            if self.device_events[d] == 1 {
                self.devices += 1;
            }
        }
    }

    /// Evicts one previously inserted CE from the window.
    pub fn remove(&mut self, addr: CellAddr, device_mask: u32) {
        debug_assert!(self.events > 0, "evicting from an empty window");
        let th = self.th;
        self.events -= 1;

        let cell_key = (addr.rank, addr.bank, addr.row, addr.col);
        let c = self.cells.get_mut(&cell_key).expect("cell count present");
        if *c == th.cell_repeats {
            self.cell_hits -= 1;
        }
        *c -= 1;
        if *c == 0 {
            self.cells.remove(&cell_key);
        }

        let row_key = (addr.rank, addr.bank, addr.row);
        let cols = self.row_cols.get_mut(&row_key).expect("row state present");
        let before = cols.len() as u32;
        let n = cols.get_mut(&addr.col).expect("col count present");
        *n -= 1;
        if *n == 0 {
            cols.remove(&addr.col);
        }
        if before >= th.row_distinct_cols && (cols.len() as u32) < th.row_distinct_cols {
            self.row_hits -= 1;
        }
        if cols.is_empty() {
            self.row_cols.remove(&row_key);
        }

        let col_key = (addr.rank, addr.bank, addr.col);
        let rows = self.col_rows.get_mut(&col_key).expect("column state present");
        let before = rows.len() as u32;
        let n = rows.get_mut(&addr.row).expect("row count present");
        *n -= 1;
        if *n == 0 {
            rows.remove(&addr.row);
        }
        if before >= th.col_distinct_rows && (rows.len() as u32) < th.col_distinct_rows {
            self.col_hits -= 1;
        }
        if rows.is_empty() {
            self.col_rows.remove(&col_key);
        }

        let bank_key = (addr.rank, addr.bank);
        let bank = self.banks.get_mut(&bank_key).expect("bank state present");
        let was_hit = bank_satisfies(bank, th.bank_distinct);
        let n = bank.rows.get_mut(&addr.row).expect("bank row present");
        *n -= 1;
        if *n == 0 {
            bank.rows.remove(&addr.row);
        }
        let n = bank.cols.get_mut(&addr.col).expect("bank col present");
        *n -= 1;
        if *n == 0 {
            bank.cols.remove(&addr.col);
        }
        if was_hit && !bank_satisfies(bank, th.bank_distinct) {
            self.bank_hits -= 1;
        }
        if bank.rows.is_empty() && bank.cols.is_empty() {
            self.banks.remove(&bank_key);
        }

        let mut m = device_mask;
        while m != 0 {
            let d = m.trailing_zeros() as usize;
            m &= m - 1;
            self.device_events[d] -= 1;
            if self.device_events[d] == 0 {
                self.devices -= 1;
            }
        }
    }

    /// The fault modes evident in the current window, identical to
    /// [`classify_ces`] over the same events.
    pub fn classify(&self) -> ObservedFaults {
        if self.events == 0 {
            return ObservedFaults::default();
        }
        ObservedFaults {
            cell: self.cell_hits > 0,
            row: self.row_hits > 0,
            column: self.col_hits > 0,
            bank: self.bank_hits > 0,
            single_device: self.devices == 1,
            multi_device: self.devices >= 2,
        }
    }
}

fn bank_satisfies(bank: &BankDispersion, th: u32) -> bool {
    bank.rows.len() as u32 >= th && bank.cols.len() as u32 >= th
}

/// Classifies a DIMM's whole history up to (excluding) `before`.
pub fn classify_history(
    history: &DimmHistory<'_>,
    before: mfp_dram::time::SimTime,
    width: DataWidth,
    th: &FaultThresholds,
) -> ObservedFaults {
    classify_ces(
        history.ces_in(mfp_dram::time::SimTime::ZERO, before),
        width,
        th,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::{CellAddr, DimmId};
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::time::SimTime;

    fn ce_at(t: u64, bank: u8, row: u32, col: u16, dev: u8) -> CeEvent {
        CeEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(0, 0),
            addr: CellAddr::new(0, bank, row, col),
            transfer: ErrorTransfer::from_bits([(0, dev * 4)]),
        }
    }

    #[test]
    fn repeated_cell_is_cell_fault() {
        let ces = [ce_at(1, 0, 5, 5, 0), ce_at(2, 0, 5, 5, 0)];
        let f = classify_ces(ces.iter(), DataWidth::X4, &FaultThresholds::default());
        assert!(f.cell);
        assert!(!f.row && !f.column && !f.bank);
        assert!(f.single_device && !f.multi_device);
    }

    #[test]
    fn spread_along_row_is_row_fault() {
        let ces = [ce_at(1, 0, 5, 1, 0), ce_at(2, 0, 5, 2, 0)];
        let f = classify_ces(ces.iter(), DataWidth::X4, &FaultThresholds::default());
        assert!(f.row && !f.cell && !f.column);
    }

    #[test]
    fn spread_along_column_is_column_fault() {
        let ces = [ce_at(1, 0, 5, 1, 0), ce_at(2, 0, 9, 1, 0)];
        let f = classify_ces(ces.iter(), DataWidth::X4, &FaultThresholds::default());
        assert!(f.column && !f.row);
    }

    #[test]
    fn bank_fault_needs_rows_and_cols() {
        let ces = [ce_at(1, 2, 1, 1, 0),
            ce_at(2, 2, 2, 2, 0),
            ce_at(3, 2, 3, 3, 0)];
        let f = classify_ces(ces.iter(), DataWidth::X4, &FaultThresholds::default());
        assert!(f.bank, "3 distinct rows x 3 distinct cols in one bank");
        // Same dispersion split across two banks is not a bank fault.
        let ces2 = [ce_at(1, 2, 1, 1, 0),
            ce_at(2, 2, 2, 2, 0),
            ce_at(3, 3, 3, 3, 0)];
        let f2 = classify_ces(ces2.iter(), DataWidth::X4, &FaultThresholds::default());
        assert!(!f2.bank);
    }

    #[test]
    fn device_dimension_from_transfers() {
        let single = [ce_at(1, 0, 1, 1, 3), ce_at(2, 0, 2, 2, 3)];
        let f = classify_ces(single.iter(), DataWidth::X4, &FaultThresholds::default());
        assert!(f.single_device && !f.multi_device);

        let multi = [ce_at(1, 0, 1, 1, 3), ce_at(2, 0, 2, 2, 9)];
        let f = classify_ces(multi.iter(), DataWidth::X4, &FaultThresholds::default());
        assert!(f.multi_device && !f.single_device);
    }

    #[test]
    fn empty_history_has_no_labels() {
        let f = classify_ces(
            std::iter::empty(),
            DataWidth::X4,
            &FaultThresholds::default(),
        );
        assert_eq!(f, ObservedFaults::default());
    }

    fn assorted_ces() -> Vec<CeEvent> {
        vec![
            ce_at(1, 0, 5, 5, 0),
            ce_at(2, 0, 5, 5, 0),
            ce_at(3, 0, 5, 7, 1),
            ce_at(4, 2, 1, 1, 0),
            ce_at(5, 2, 2, 2, 0),
            ce_at(6, 2, 3, 3, 0),
            ce_at(7, 0, 9, 5, 3),
            ce_at(8, 2, 1, 1, 3),
        ]
    }

    #[test]
    fn rolling_matches_batch_on_every_prefix() {
        let ces = assorted_ces();
        let th = FaultThresholds::default();
        let mut rolling = RollingFaultClassifier::new(th);
        for k in 0..=ces.len() {
            let batch = classify_ces(ces[..k].iter(), DataWidth::X4, &th);
            assert_eq!(rolling.classify(), batch, "prefix {k}");
            if k < ces.len() {
                rolling.insert(ces[k].addr, ces[k].transfer.device_mask(DataWidth::X4));
            }
        }
    }

    #[test]
    fn rolling_matches_batch_under_eviction() {
        let ces = assorted_ces();
        let th = FaultThresholds::default();
        let width = DataWidth::X4;
        let mut rolling = RollingFaultClassifier::new(th);
        // Slide a length-4 window across the sequence, checking each step.
        for hi in 0..ces.len() {
            rolling.insert(ces[hi].addr, ces[hi].transfer.device_mask(width));
            if hi >= 4 {
                rolling.remove(ces[hi - 4].addr, ces[hi - 4].transfer.device_mask(width));
            }
            let lo = (hi + 1).saturating_sub(4);
            let batch = classify_ces(ces[lo..=hi].iter(), width, &th);
            assert_eq!(rolling.classify(), batch, "window [{lo}, {hi}]");
        }
        // Draining the window recovers the empty classification.
        let lo = ces.len().saturating_sub(4);
        for ce in &ces[lo..] {
            rolling.remove(ce.addr, ce.transfer.device_mask(width));
        }
        assert_eq!(rolling.classify(), ObservedFaults::default());
    }

    #[test]
    fn labels_and_flags_align() {
        let f = ObservedFaults {
            cell: true,
            multi_device: true,
            ..Default::default()
        };
        let flags = f.flags();
        assert!(flags[0]); // cell
        assert!(flags[5]); // multi-device
        assert_eq!(ObservedFaults::LABELS.len(), flags.len());
    }
}
