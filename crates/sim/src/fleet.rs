//! Fleet-level simulation: the synthetic substitute for the paper's
//! production dataset.
//!
//! [`simulate_fleet`] generates every platform's sub-fleet, simulates each
//! DIMM on a pool of worker threads (crossbeam scoped threads), and returns
//! the merged BMC log together with per-DIMM ground truth. Per-DIMM RNG
//! streams are derived from the master seed with SplitMix64, so results are
//! bit-identical regardless of thread count or scheduling.

use crate::config::{DimmCategory, FleetConfig};
use crate::dimm::{simulate_dimm_ras, DimmOutcome, StormPolicy};
use crate::fault::FaultMode;
use crate::gen::{generate_plans, DimmPlan};
use mfp_dram::address::DimmId;
use mfp_dram::bmc::BmcLog;
use mfp_dram::geometry::Platform;
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::SimTime;
use mfp_ecc::platforms::CachedPlatformEcc;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Ground truth for one simulated DIMM (never visible to the predictor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimmTruth {
    /// The DIMM's identity.
    pub id: DimmId,
    /// Hosting platform.
    pub platform: Platform,
    /// Static spec.
    pub spec: DimmSpec,
    /// Generative category.
    pub category: DimmCategory,
    /// Spatial modes of the injected faults.
    pub fault_modes: Vec<FaultMode>,
    /// Simulation outcome counters.
    pub outcome: DimmOutcome,
}

impl DimmTruth {
    /// Time of the DIMM's first UE, if it failed.
    pub fn first_ue(&self) -> Option<SimTime> {
        self.outcome.first_ue
    }

    /// Whether the DIMM logged at least one CE.
    pub fn has_ces(&self) -> bool {
        self.outcome.logged_ces > 0 || self.outcome.suppressed_ces > 0
    }
}

/// The simulated dataset: merged BMC log plus ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetResult {
    /// All memory events of the fleet, time-ordered.
    pub log: BmcLog,
    /// Ground truth per DIMM, in generation order.
    pub dimms: Vec<DimmTruth>,
    /// The configuration that produced this dataset.
    pub config: FleetConfig,
}

impl FleetResult {
    /// Truths for one platform.
    pub fn platform_dimms(&self, platform: Platform) -> impl Iterator<Item = &DimmTruth> {
        self.dimms.iter().filter(move |d| d.platform == platform)
    }
}

/// SplitMix64: derives independent per-DIMM seeds from the master seed.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One planned DIMM with everything its simulation needs: the hosting
/// platform, the generated plan and the pre-derived RNG seed.
///
/// The seed is a pure function of `(master_seed, platform_index,
/// dimm_index)` — it never involves worker or shard identity, which is
/// what makes every execution strategy (sequential, chunked threads,
/// sharded) produce bit-identical event streams.
pub(crate) type PlannedDimm = (Platform, DimmPlan, u64);

/// Phase 1 of every fleet simulation: generate all DIMM plans
/// sequentially (cheap) and derive each DIMM's RNG seed from the master
/// seed. Deterministic in `cfg` alone.
pub(crate) fn plan_fleet(cfg: &FleetConfig) -> Vec<PlannedDimm> {
    let mut tagged: Vec<PlannedDimm> = Vec::new();
    let mut base_server = 0u32;
    for (pi, pc) in cfg.platforms.iter().enumerate() {
        let mut gen_rng = StdRng::seed_from_u64(splitmix64(
            cfg.seed ^ (0xA11C_E000 + pi as u64),
        ));
        let plans = generate_plans(pc, cfg.horizon, base_server, &mut gen_rng);
        base_server += plans.len() as u32 + 1000;
        for (di, plan) in plans.into_iter().enumerate() {
            let seed = splitmix64(cfg.seed ^ ((pi as u64) << 32) ^ (di as u64 + 1));
            tagged.push((pc.platform, plan, seed));
        }
    }
    tagged
}

/// Runs the whole fleet simulation.
///
/// Deterministic in `cfg` (including `cfg.seed`); parallelism is an
/// implementation detail. Worker count defaults to available parallelism
/// capped at [`FleetConfig::max_auto_workers`]; the cap is reported via
/// `mfp-obs` (`sim_fleet_workers` gauge, `sim_fleet_workers_capped`
/// counter) so a many-core host can see it bite. Use
/// [`simulate_fleet_with_workers`] to pick an uncapped explicit count.
pub fn simulate_fleet(cfg: &FleetConfig) -> FleetResult {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let workers = available.min(cfg.max_auto_workers.max(1));
    mfp_obs::gauge("sim_fleet_workers", &[]).set(workers as f64);
    if workers < available {
        mfp_obs::counter("sim_fleet_workers_capped", &[]).incr();
    }
    simulate_fleet_with_workers(cfg, workers)
}

/// Runs the fleet simulation on a fixed number of worker threads.
pub fn simulate_fleet_with_workers(cfg: &FleetConfig, workers: usize) -> FleetResult {
    let span = mfp_obs::latency("sim_fleet_seconds", &[]).time();
    let storm = StormPolicy {
        threshold: cfg.storm_threshold,
        suppression: cfg.storm_suppression,
    };

    // Phase 1: generate plans sequentially (cheap) for determinism.
    let tagged = plan_fleet(cfg);

    // Phase 2: simulate in parallel; each DIMM uses its own seeded RNG.
    let workers = workers.max(1);
    let chunk = tagged.len().div_ceil(workers).max(1);
    let mut results: Vec<(BmcLog, Vec<DimmTruth>)> = Vec::new();
    crossbeam::scope(|s| {
        let mut handles = Vec::new();
        for slice in tagged.chunks(chunk) {
            handles.push(s.spawn(move |_| {
                let mut log = BmcLog::new();
                let mut truths = Vec::with_capacity(slice.len());
                // Memoized decode: fault processes replay the same transfer
                // signatures, so most syndromes are cache hits (decoding is
                // pure — outcomes are unchanged).
                let eccs: Vec<(Platform, CachedPlatformEcc)> = Platform::ALL
                    .iter()
                    .map(|&p| (p, CachedPlatformEcc::for_platform(p)))
                    .collect();
                for (platform, plan, seed) in slice {
                    let ecc = &eccs
                        .iter()
                        .find(|(p, _)| p == platform)
                        .expect("platform ecc")
                        .1;
                    let mut rng = StdRng::seed_from_u64(*seed);
                    let outcome = simulate_dimm_ras(
                        plan,
                        ecc,
                        cfg.horizon,
                        storm,
                        cfg.ras,
                        &mut log,
                        &mut rng,
                    );
                    truths.push(DimmTruth {
                        id: plan.id,
                        platform: *platform,
                        spec: plan.spec,
                        category: plan.category,
                        fault_modes: plan.faults.iter().map(|f| f.mode).collect(),
                        outcome,
                    });
                }
                log.sort();
                (log, truths)
            }));
        }
        for h in handles {
            results.push(h.join().expect("simulation worker panicked"));
        }
    })
    .expect("crossbeam scope");

    let mut log = BmcLog::new();
    let mut dimms = Vec::with_capacity(tagged.len());
    for (part_log, part_truths) in results {
        log.merge(part_log);
        dimms.extend(part_truths);
    }
    log.sort();
    let result = FleetResult {
        log,
        dimms,
        config: cfg.clone(),
    };
    // One flush per run: the workers' CachedPlatformEcc instances already
    // pushed decode/cache counters when they dropped.
    mfp_obs::counter("sim_fleet_runs", &[]).incr();
    mfp_obs::counter("sim_events_generated", &[]).add(result.log.len() as u64);
    mfp_obs::counter("sim_dimms_simulated", &[]).add(result.dimms.len() as u64);
    span.stop();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_runs_and_is_deterministic() {
        let cfg = FleetConfig::smoke(42);
        let a = simulate_fleet_with_workers(&cfg, 4);
        let b = simulate_fleet_with_workers(&cfg, 1);
        assert_eq!(a.log.len(), b.log.len(), "thread count must not matter");
        assert_eq!(a.log.events(), b.log.events());
        assert_eq!(a.dimms.len(), b.dimms.len());
        assert!(!a.log.is_empty());
    }

    #[test]
    fn auto_worker_cap_is_explicit_and_reported() {
        let mut cfg = FleetConfig::smoke(42);
        assert_eq!(cfg.max_auto_workers, 16, "documented default");
        // Force the cap to bite regardless of the host's core count.
        cfg.max_auto_workers = 1;
        let capped_before = mfp_obs::global().snapshot().counter("sim_fleet_workers_capped");
        let capped = simulate_fleet(&cfg);
        let snap = mfp_obs::global().snapshot();
        assert_eq!(snap.gauge("sim_fleet_workers"), Some(1.0));
        if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4) > 1 {
            assert!(snap.counter("sim_fleet_workers_capped") > capped_before);
        }
        // The cap is an execution detail: output is unchanged.
        let oracle = simulate_fleet_with_workers(&FleetConfig::smoke(42), 2);
        assert_eq!(capped.log.events(), oracle.log.events());
    }

    #[test]
    fn different_seeds_differ() {
        let a = simulate_fleet(&FleetConfig::smoke(1));
        let b = simulate_fleet(&FleetConfig::smoke(2));
        assert_ne!(a.log.len(), b.log.len());
    }

    #[test]
    fn benign_dimms_never_ue() {
        let r = simulate_fleet(&FleetConfig::smoke(7));
        for d in &r.dimms {
            if d.category == DimmCategory::Benign {
                assert!(
                    d.first_ue().is_none(),
                    "benign {:?} must not UE (modes {:?})",
                    d.id,
                    d.fault_modes
                );
            }
        }
    }

    #[test]
    fn sudden_dimms_ue_without_ce_history() {
        let r = simulate_fleet(&FleetConfig::smoke(7));
        let mut sudden_ues = 0;
        for d in &r.dimms {
            if d.category == DimmCategory::Sudden {
                if d.first_ue().is_some() {
                    sudden_ues += 1;
                }
                assert!(d.outcome.logged_ces <= 2);
            }
        }
        assert!(sudden_ues > 0, "some sudden DIMMs must fail in-horizon");
    }

    #[test]
    fn degrading_dimms_produce_predictable_ues() {
        let r = simulate_fleet(&FleetConfig::smoke(7));
        let mut predictable = 0;
        for d in &r.dimms {
            if d.category == DimmCategory::Degrading && d.first_ue().is_some() {
                assert!(
                    d.outcome.logged_ces > 0,
                    "degrading UE must have CE warning"
                );
                predictable += 1;
            }
        }
        assert!(predictable > 0, "some degrading DIMMs must reach UE");
    }

    #[test]
    fn all_platforms_present_in_log() {
        let r = simulate_fleet(&FleetConfig::smoke(3));
        for p in Platform::ALL {
            assert!(
                r.platform_dimms(p).count() > 0,
                "{p} missing from fleet"
            );
        }
    }
}
