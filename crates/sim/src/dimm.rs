//! The per-DIMM discrete-event simulation engine.
//!
//! For each fault on a DIMM, accesses hitting its footprint form a Poisson
//! process (demand traffic + patrol scrub). Each hit samples a raw burst
//! error pattern from the fault, runs it through the platform's *real* ECC
//! decoder, and the decode outcome determines what the BMC logs: a CE, a
//! machine-check UE (simulation stops — the DIMM is replaced), or nothing
//! at all (silent corruption). CE storms trigger logging suppression, as
//! production BMCs do.

use crate::gen::DimmPlan;
use crate::ras::{AdddcState, RasPolicy, RasReport, RasState};
use mfp_dram::bmc::BmcLog;
use mfp_dram::event::{CeEvent, CeStormEvent, MemEvent, UeEvent};
use mfp_dram::time::{SimDuration, SimTime};
use mfp_ecc::scheme::{DecodeOutcome, EccScheme};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Counters and outcome of simulating one DIMM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimmOutcome {
    /// Time of the first uncorrectable error, if any.
    pub first_ue: Option<SimTime>,
    /// Number of logged CE events.
    pub logged_ces: u32,
    /// CE interrupts that occurred while logging was storm-suppressed.
    pub suppressed_ces: u32,
    /// Number of CE-storm events.
    pub storms: u32,
    /// Accesses whose errors were silently miscorrected or undetected.
    pub sdc_hits: u32,
    /// RAS mitigation activity (zeroed when no policy is active).
    pub ras: RasReport,
    /// Whether ADDDC virtual lockstep engaged during the run.
    pub adddc_engaged: bool,
}

/// Parameters governing BMC-side CE-storm suppression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormPolicy {
    /// CE interrupts within one minute that trigger a storm.
    pub threshold: u32,
    /// Logging suppression duration after a storm fires.
    pub suppression: SimDuration,
}

impl Default for StormPolicy {
    fn default() -> Self {
        StormPolicy {
            threshold: 10,
            suppression: SimDuration::hours(1),
        }
    }
}

/// Simulates one DIMM until `horizon` or its first UE.
///
/// Events are appended to `log` in time order. Returns the outcome
/// counters. The caller supplies the per-DIMM RNG so fleet simulation is
/// reproducible regardless of thread scheduling.
pub fn simulate_dimm<R: Rng>(
    plan: &DimmPlan,
    ecc: &dyn EccScheme,
    horizon: SimDuration,
    storm: StormPolicy,
    log: &mut BmcLog,
    rng: &mut R,
) -> DimmOutcome {
    simulate_dimm_ras(plan, ecc, horizon, storm, None, log, rng)
}

/// Simulates one DIMM under an optional RAS mitigation policy (page
/// offlining + PPR, paper §II-C): row-confined faults can be repaired or
/// retired before they escalate, while wider faults keep erring.
pub fn simulate_dimm_ras<R: Rng>(
    plan: &DimmPlan,
    ecc: &dyn EccScheme,
    horizon: SimDuration,
    storm: StormPolicy,
    ras_policy: Option<RasPolicy>,
    log: &mut BmcLog,
    rng: &mut R,
) -> DimmOutcome {
    // Generate every fault's hit times up front, then process in order.
    let mut hits: Vec<(SimTime, usize)> = Vec::new();
    for (idx, fault) in plan.faults.iter().enumerate() {
        let rate_per_sec = fault.hit_rate_per_day / 86_400.0;
        let mut t = fault.onset;
        // Safety valve: no fault produces more than ~100k hits.
        for _ in 0..100_000 {
            let u: f64 = rng.random::<f64>().max(1e-300);
            let dt = -u.ln() / rate_per_sec;
            if !dt.is_finite() {
                break;
            }
            t += SimDuration::secs(dt.max(1.0) as u64);
            if t >= SimTime::ZERO + horizon {
                break;
            }
            hits.push((t, idx));
        }
    }
    hits.sort_unstable_by_key(|&(t, _)| t);

    let mut outcome = DimmOutcome {
        first_ue: None,
        logged_ces: 0,
        suppressed_ces: 0,
        storms: 0,
        sdc_hits: 0,
        ras: RasReport::default(),
        adddc_engaged: false,
    };
    let mut recent_ces: VecDeque<SimTime> = VecDeque::new();
    let mut suppressed_until: Option<SimTime> = None;
    let mut ras = ras_policy.map(RasState::new);
    let mut adddc = ras_policy.and_then(|p| p.adddc).map(AdddcState::new);
    // Once ADDDC engages, the failing device is mapped out via virtual
    // lockstep: decode proceeds under full per-beat SDDC.
    let lockstep_ecc = mfp_ecc::scheme::SddcPerBeat::new();
    let mut fault_active = vec![true; plan.faults.len()];

    for (t, idx) in hits {
        if !fault_active[idx] {
            continue;
        }
        let fault = &plan.faults[idx];
        let transfer = fault.sample_transfer(t, plan.spec.width, rng);
        let lockstep = adddc.as_ref().is_some_and(AdddcState::is_active);
        let outcome_decode = if lockstep {
            mfp_ecc::scheme::EccScheme::decode(&lockstep_ecc, &transfer, plan.spec.width)
        } else {
            ecc.decode(&transfer, plan.spec.width)
        };
        match outcome_decode {
            DecodeOutcome::Clean => {}
            DecodeOutcome::Corrected => {
                // Storm bookkeeping happens on the *interrupt*, logged or not.
                // `checked_duration_since` would panic on a regressed
                // clock; saturate instead so a skewed record can never
                // abort the run.
                while recent_ces
                    .front()
                    .is_some_and(|&t0| {
                        t.checked_duration_since(t0)
                            .is_some_and(|d| d.as_secs() > 60)
                    })
                {
                    recent_ces.pop_front();
                }
                recent_ces.push_back(t);

                let suppressed = suppressed_until.is_some_and(|u| t < u);
                if suppressed {
                    outcome.suppressed_ces += 1;
                    continue;
                }
                if recent_ces.len() as u32 >= storm.threshold {
                    outcome.storms += 1;
                    suppressed_until = Some(t + storm.suppression);
                    log.push(MemEvent::Storm(CeStormEvent {
                        time: t,
                        dimm: plan.id,
                        count: recent_ces.len() as u32,
                    }));
                    recent_ces.clear();
                    continue;
                }
                outcome.logged_ces += 1;
                let addr = fault.sample_addr(&plan.spec.geometry, rng);
                log.push(MemEvent::Ce(CeEvent {
                    time: t,
                    dimm: plan.id,
                    addr,
                    transfer,
                }));
                if let Some(ras) = ras.as_mut() {
                    let action = ras.observe_ce(&addr);
                    if ras.fault_is_mitigated(fault, action, &addr) {
                        fault_active[idx] = false;
                    }
                }
                if let Some(adddc) = adddc.as_mut() {
                    if adddc.observe_devices(transfer.device_mask(plan.spec.width)) {
                        outcome.adddc_engaged = true;
                    }
                }
            }
            DecodeOutcome::Ue => {
                outcome.first_ue = Some(t);
                log.push(MemEvent::Ue(UeEvent {
                    time: t,
                    dimm: plan.id,
                    addr: fault.sample_addr(&plan.spec.geometry, rng),
                    transfer,
                }));
                break; // DIMM is taken out of service.
            }
            DecodeOutcome::Sdc => {
                outcome.sdc_hits += 1;
            }
        }
    }
    if let Some(ras) = ras {
        outcome.ras = ras.report();
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DimmCategory, FleetConfig};
    use crate::gen::{sample_benign_fault, sample_spec, sample_sudden_fault, DimmPlan};
    use mfp_dram::address::DimmId;
    use mfp_dram::geometry::Platform;
    use mfp_ecc::platforms::PlatformEcc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn purley_cfg() -> crate::config::PlatformConfig {
        FleetConfig::calibrated(100.0, 3)
            .platform(Platform::IntelPurley)
            .unwrap()
            .clone()
    }

    #[test]
    fn benign_dimm_produces_ces_but_no_ue() {
        let cfg = purley_cfg();
        let mut rng = StdRng::seed_from_u64(11);
        let ecc = PlatformEcc::for_platform(Platform::IntelPurley);
        let horizon = SimDuration::days(90);
        for _ in 0..20 {
            let mut spec = sample_spec(&cfg, &mut rng);
            spec.width = mfp_dram::geometry::DataWidth::X4;
            let fault = sample_benign_fault(&cfg, &spec, horizon, &mut rng);
            let plan = DimmPlan {
                id: DimmId::new(1, 0),
                spec,
                category: DimmCategory::Benign,
                faults: vec![fault],
            };
            let mut log = BmcLog::new();
            let out = simulate_dimm(
                &plan,
                &ecc,
                horizon,
                StormPolicy::default(),
                &mut log,
                &mut rng,
            );
            assert!(out.first_ue.is_none(), "benign DIMM must not UE");
        }
    }

    #[test]
    fn sudden_dimm_fails_fast_without_prior_ces() {
        let cfg = purley_cfg();
        let mut rng = StdRng::seed_from_u64(12);
        let ecc = PlatformEcc::for_platform(Platform::IntelPurley);
        let horizon = SimDuration::days(270);
        let mut ue_count = 0;
        for _ in 0..20 {
            let spec = sample_spec(&cfg, &mut rng);
            let fault = sample_sudden_fault(&spec, SimDuration::days(100), &mut rng);
            let onset = fault.onset;
            let plan = DimmPlan {
                id: DimmId::new(2, 0),
                spec,
                category: DimmCategory::Sudden,
                faults: vec![fault],
            };
            let mut log = BmcLog::new();
            let out = simulate_dimm(
                &plan,
                &ecc,
                horizon,
                StormPolicy::default(),
                &mut log,
                &mut rng,
            );
            if let Some(ue) = out.first_ue {
                ue_count += 1;
                // UE within a day of onset, with essentially no CE warning.
                assert!((ue - onset) < SimDuration::days(1), "UE too late");
                assert!(out.logged_ces <= 2, "sudden UE must lack CE history");
            }
        }
        assert!(ue_count >= 18, "sudden faults must almost always UE");
    }

    #[test]
    fn storm_suppression_limits_logging() {
        let cfg = purley_cfg();
        let mut rng = StdRng::seed_from_u64(13);
        let ecc = PlatformEcc::for_platform(Platform::IntelPurley);
        // A very hot benign fault: thousands of hits per day.
        let mut spec = sample_spec(&cfg, &mut rng);
        spec.width = mfp_dram::geometry::DataWidth::X4;
        let mut fault = sample_benign_fault(&cfg, &spec, SimDuration::days(10), &mut rng);
        fault.hit_rate_per_day = 50_000.0;
        fault.onset = SimTime::ZERO;
        fault.dq_mask = 0b1;
        let plan = DimmPlan {
            id: DimmId::new(3, 0),
            spec,
            category: DimmCategory::Benign,
            faults: vec![fault],
        };
        let mut log = BmcLog::new();
        let out = simulate_dimm(
            &plan,
            &ecc,
            SimDuration::days(2),
            StormPolicy::default(),
            &mut log,
            &mut rng,
        );
        assert!(out.storms > 0, "hot fault must trigger storms");
        assert!(
            out.suppressed_ces > out.logged_ces,
            "suppression must hide most interrupts: logged={} suppressed={}",
            out.logged_ces,
            out.suppressed_ces
        );
    }

    #[test]
    fn adddc_rescues_purley_single_device_degradation() {
        use crate::config::FleetConfig;
        use crate::gen::sample_degrading_fault;
        use crate::ras::{AdddcPolicy, RasPolicy};

        let cfg = purley_cfg();
        let ecc = PlatformEcc::for_platform(Platform::IntelPurley);
        let horizon = SimDuration::days(200);
        let policy = RasPolicy {
            // Only ADDDC; no offlining interference.
            page_offline_threshold: u32::MAX,
            ppr_enabled: false,
            adddc: Some(AdddcPolicy { activation_ces: 5 }),
            ..Default::default()
        };
        let _ = FleetConfig::smoke(1); // keep import used under cfg changes

        let mut rng = StdRng::seed_from_u64(77);
        let mut ue_with = 0;
        let mut ue_without = 0;
        let mut engaged = 0;
        for k in 0..30 {
            let mut spec = sample_spec(&cfg, &mut rng);
            spec.width = mfp_dram::geometry::DataWidth::X4;
            let mut fault = sample_degrading_fault(&cfg, &spec, horizon, &mut rng);
            fault.onset = SimTime::ZERO;
            fault.spread = None; // pure single-device degradation
            fault.profile.stall_at = None;
            let plan = DimmPlan {
                id: DimmId::new(100 + k, 0),
                spec,
                category: DimmCategory::Degrading,
                faults: vec![fault],
            };
            let mut log = BmcLog::new();
            let mut rng_a = StdRng::seed_from_u64(1000 + k as u64);
            let with = crate::dimm::simulate_dimm_ras(
                &plan,
                &ecc,
                horizon,
                StormPolicy::default(),
                Some(policy),
                &mut log,
                &mut rng_a,
            );
            let mut log2 = BmcLog::new();
            let mut rng_b = StdRng::seed_from_u64(1000 + k as u64);
            let without = crate::dimm::simulate_dimm_ras(
                &plan,
                &ecc,
                horizon,
                StormPolicy::default(),
                None,
                &mut log2,
                &mut rng_b,
            );
            ue_with += with.first_ue.is_some() as u32;
            ue_without += without.first_ue.is_some() as u32;
            engaged += with.adddc_engaged as u32;
        }
        assert!(engaged > 10, "lockstep must engage on degrading DIMMs");
        assert!(
            ue_with < ue_without,
            "ADDDC must reduce Purley single-device UEs: {ue_with} vs {ue_without}"
        );
    }

    #[test]
    fn log_events_are_time_ordered() {
        let cfg = purley_cfg();
        let mut rng = StdRng::seed_from_u64(14);
        let ecc = PlatformEcc::for_platform(Platform::IntelPurley);
        let horizon = SimDuration::days(60);
        let spec = sample_spec(&cfg, &mut rng);
        let faults = vec![
            sample_benign_fault(&cfg, &spec, horizon, &mut rng),
            sample_benign_fault(&cfg, &spec, horizon, &mut rng),
        ];
        let plan = DimmPlan {
            id: DimmId::new(4, 1),
            spec,
            category: DimmCategory::Benign,
            faults,
        };
        let mut log = BmcLog::new();
        simulate_dimm(
            &plan,
            &ecc,
            horizon,
            StormPolicy::default(),
            &mut log,
            &mut rng,
        );
        log.sort();
        let times: Vec<_> = log.events().iter().map(|e| e.time()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
