//! Memory RAS mitigation techniques (paper §II-C): page offlining and
//! Post Package Repair (PPR).
//!
//! Production platforms do not watch faults passively — the OS retires
//! pages that accumulate CEs \[34, 36, 37\] and the DIMM can fuse in spare
//! rows (PPR \[33\]). Both remove *row-confined* faults from the access
//! path; faults spanning a column, bank or whole device keep erring, which
//! is exactly why they dominate the UE population. The fleet simulator
//! applies a [`RasPolicy`] per DIMM and reports what was mitigated.

use crate::fault::Fault;
use mfp_dram::address::{CellAddr, Region};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// RAS mitigation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RasPolicy {
    /// CEs on one row before the OS offlines the backing page.
    pub page_offline_threshold: u32,
    /// Maximum pages the OS will retire per DIMM.
    pub page_offline_budget: u32,
    /// Whether PPR is attempted before page offlining.
    pub ppr_enabled: bool,
    /// Spare rows available for PPR per DIMM.
    pub ppr_budget: u32,
    /// Optional ADDDC-style adaptive device sparing (Intel \[34, 35\]).
    pub adddc: Option<AdddcPolicy>,
}

impl Default for RasPolicy {
    fn default() -> Self {
        RasPolicy {
            page_offline_threshold: 8,
            page_offline_budget: 64,
            ppr_enabled: true,
            ppr_budget: 4,
            adddc: None,
        }
    }
}

/// ADDDC (Adaptive Double Device Data Correction, \[34, 35\]): once a DRAM
/// device shows persistent CEs, the controller engages virtual lockstep —
/// mapping the failing device out and restoring full device-level
/// correction (at a capacity/bandwidth cost this model does not track).
///
/// On the Purley model this upgrades the weakened odd beats back to full
/// SDDC for the remainder of the DIMM's life, so single-chip degradation
/// stops producing UEs — at the price of consuming the sparing budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdddcPolicy {
    /// Corrected errors observed on a single device before lockstep
    /// engages.
    pub activation_ces: u32,
}

impl Default for AdddcPolicy {
    fn default() -> Self {
        AdddcPolicy { activation_ces: 16 }
    }
}

/// Per-DIMM ADDDC activation state.
#[derive(Debug, Clone)]
pub struct AdddcState {
    policy: AdddcPolicy,
    ce_per_device: [u32; 18],
    active: bool,
}

impl AdddcState {
    /// Creates inactive state.
    pub fn new(policy: AdddcPolicy) -> Self {
        AdddcState {
            policy,
            ce_per_device: [0; 18],
            active: false,
        }
    }

    /// Whether virtual lockstep is engaged.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Observes the device bitmask of a corrected transfer; returns true
    /// when this observation activates lockstep.
    pub fn observe_devices(&mut self, device_mask: u32) -> bool {
        if self.active {
            return false;
        }
        for (d, count) in self.ce_per_device.iter_mut().enumerate() {
            if (device_mask >> d) & 1 == 1 {
                *count += 1;
                if *count >= self.policy.activation_ces {
                    self.active = true;
                }
            }
        }
        self.active
    }
}

/// What the RAS layer decided after observing a CE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RasAction {
    /// No mitigation triggered.
    None,
    /// The row was repaired with a spare (fault gone for good).
    PprRepair,
    /// The backing page was retired (row no longer accessed).
    PageOffline,
}

/// Counters of mitigation activity on one DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RasReport {
    /// Rows repaired by PPR.
    pub ppr_repairs: u32,
    /// Pages retired.
    pub pages_offlined: u32,
    /// Faults deactivated by either mechanism.
    pub faults_mitigated: u32,
}

/// Per-DIMM RAS state machine.
#[derive(Debug, Clone)]
pub struct RasState {
    policy: RasPolicy,
    row_ces: BTreeMap<(u8, u8, u32), u32>,
    ppr_left: u32,
    offline_left: u32,
    /// Rows removed from the access path (repaired or retired).
    dead_rows: BTreeMap<(u8, u8, u32), RasAction>,
    report: RasReport,
}

impl RasState {
    /// Creates fresh state under a policy.
    pub fn new(policy: RasPolicy) -> Self {
        RasState {
            policy,
            row_ces: BTreeMap::new(),
            ppr_left: policy.ppr_budget,
            offline_left: policy.page_offline_budget,
            dead_rows: BTreeMap::new(),
            report: RasReport::default(),
        }
    }

    /// Mitigation activity so far.
    pub fn report(&self) -> RasReport {
        self.report
    }

    /// Whether a row has been repaired or retired.
    pub fn row_is_dead(&self, rank: u8, bank: u8, row: u32) -> bool {
        self.dead_rows.contains_key(&(rank, bank, row))
    }

    /// Observes one CE at `addr`; returns the action taken (if any).
    pub fn observe_ce(&mut self, addr: &CellAddr) -> RasAction {
        let key = (addr.rank, addr.bank, addr.row);
        if self.dead_rows.contains_key(&key) {
            return RasAction::None;
        }
        let count = self.row_ces.entry(key).or_insert(0);
        *count += 1;
        if *count < self.policy.page_offline_threshold {
            return RasAction::None;
        }
        // Threshold crossed: prefer a hard repair, fall back to retiring
        // the page, give up when both budgets are spent.
        if self.policy.ppr_enabled && self.ppr_left > 0 {
            self.ppr_left -= 1;
            self.report.ppr_repairs += 1;
            self.dead_rows.insert(key, RasAction::PprRepair);
            RasAction::PprRepair
        } else if self.offline_left > 0 {
            self.offline_left -= 1;
            self.report.pages_offlined += 1;
            self.dead_rows.insert(key, RasAction::PageOffline);
            RasAction::PageOffline
        } else {
            RasAction::None
        }
    }

    /// Whether a mitigation kills `fault` outright: only faults confined to
    /// the affected row disappear — column/bank/device faults keep erring
    /// through other rows (the paper's point about limited applicability).
    pub fn fault_is_mitigated(&mut self, fault: &Fault, action: RasAction, addr: &CellAddr) -> bool {
        if action == RasAction::None {
            return false;
        }
        let confined = match fault.region {
            Region::Cell { addr: a } => a.rank == addr.rank && a.bank == addr.bank && a.row == addr.row,
            Region::Row { rank, bank, row } => {
                rank == addr.rank && bank == addr.bank && row == addr.row
            }
            _ => false,
        };
        if confined {
            self.report.faults_mitigated += 1;
        }
        confined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultMode, SeverityProfile};
    use mfp_dram::time::SimTime;

    fn addr(row: u32) -> CellAddr {
        CellAddr::new(0, 3, row, 7)
    }

    fn row_fault(row: u32) -> Fault {
        Fault {
            mode: FaultMode::Row,
            device: 2,
            extra_devices: vec![],
            region: Region::Row {
                rank: 0,
                bank: 3,
                row,
            },
            dq_mask: 1,
            beat_mask: 1,
            onset: SimTime::ZERO,
            profile: SeverityProfile::stable(0.05),
            hit_rate_per_day: 3.0,
            spread: None,
        }
    }

    #[allow(clippy::needless_update)] // explicit struct-update keeps the diff minimal
    fn bank_fault() -> Fault {
        Fault {
            region: Region::Bank { rank: 0, bank: 3 },
            mode: FaultMode::Bank,
            ..row_fault(0)
        }
    }

    #[test]
    fn adddc_activates_on_persistent_device() {
        let mut a = AdddcState::new(AdddcPolicy { activation_ces: 3 });
        assert!(!a.observe_devices(1 << 5));
        assert!(!a.observe_devices(1 << 5));
        assert!(a.observe_devices(1 << 5), "third CE on device 5 activates");
        assert!(a.is_active());
        assert!(!a.observe_devices(1 << 5), "already active");
    }

    #[test]
    fn adddc_counts_per_device() {
        let mut a = AdddcState::new(AdddcPolicy { activation_ces: 3 });
        // CEs spread over distinct devices never activate.
        for d in 0..9 {
            assert!(!a.observe_devices(1 << d));
            assert!(!a.observe_devices(1 << d));
        }
        assert!(!a.is_active());
    }

    #[test]
    fn threshold_triggers_ppr_first() {
        let mut ras = RasState::new(RasPolicy::default());
        for i in 0..7 {
            assert_eq!(ras.observe_ce(&addr(42)), RasAction::None, "ce {i}");
        }
        assert_eq!(ras.observe_ce(&addr(42)), RasAction::PprRepair);
        assert!(ras.row_is_dead(0, 3, 42));
        assert_eq!(ras.report().ppr_repairs, 1);
    }

    #[test]
    fn offlining_after_ppr_budget_exhausted() {
        let policy = RasPolicy {
            ppr_budget: 1,
            page_offline_threshold: 2,
            ..Default::default()
        };
        let mut ras = RasState::new(policy);
        ras.observe_ce(&addr(1));
        assert_eq!(ras.observe_ce(&addr(1)), RasAction::PprRepair);
        ras.observe_ce(&addr(2));
        assert_eq!(ras.observe_ce(&addr(2)), RasAction::PageOffline);
        assert_eq!(ras.report().pages_offlined, 1);
    }

    #[test]
    fn budgets_are_finite() {
        let policy = RasPolicy {
            ppr_budget: 0,
            ppr_enabled: true,
            page_offline_budget: 1,
            page_offline_threshold: 1,
            adddc: None,
        };
        let mut ras = RasState::new(policy);
        assert_eq!(ras.observe_ce(&addr(1)), RasAction::PageOffline);
        assert_eq!(ras.observe_ce(&addr(2)), RasAction::None, "budget spent");
    }

    #[test]
    fn dead_rows_stop_counting() {
        let mut ras = RasState::new(RasPolicy {
            page_offline_threshold: 1,
            ..Default::default()
        });
        assert_eq!(ras.observe_ce(&addr(9)), RasAction::PprRepair);
        assert_eq!(ras.observe_ce(&addr(9)), RasAction::None);
        assert_eq!(ras.report().ppr_repairs, 1);
    }

    #[test]
    fn row_confined_faults_are_mitigated_wide_faults_not() {
        let mut ras = RasState::new(RasPolicy::default());
        let a = addr(42);
        let row = row_fault(42);
        let bank = bank_fault();
        assert!(ras.fault_is_mitigated(&row, RasAction::PprRepair, &a));
        assert!(!ras.fault_is_mitigated(&bank, RasAction::PprRepair, &a));
        assert!(!ras.fault_is_mitigated(&row, RasAction::None, &a));
        assert_eq!(ras.report().faults_mitigated, 1);
    }

    #[test]
    fn other_rows_unaffected() {
        let mut ras = RasState::new(RasPolicy::default());
        let a = addr(42);
        let other = row_fault(43);
        assert!(!ras.fault_is_mitigated(&other, RasAction::PprRepair, &a));
    }
}
