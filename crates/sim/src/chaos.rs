//! Chaos injection: seeded corruption of an emitted event stream.
//!
//! Production BMC/MCE telemetry is not the clean, globally time-ordered
//! log `mfp-sim` emits: collectors batch and retry (late delivery),
//! at-least-once shipping duplicates records, NTP steps skew or even
//! regress timestamps, firmware bugs mangle fields, and whole collection
//! windows vanish when a relay falls over. [`inject_chaos`] applies these
//! failure modes to a clean stream under a seeded, fully reproducible
//! [`ChaosConfig`], so every downstream component (ingestion, feature
//! serving, online prediction) can be tested against realistic hostile
//! input instead of happy-path replay.
//!
//! Two invariants make the corrupted stream useful for exact testing:
//!
//! * **Determinism.** Output depends only on `(events, cfg)`; the RNG is
//!   seeded from `cfg.seed`.
//! * **Bounded reorder.** Delivery displacement is capped by
//!   `cfg.max_lateness`: in the returned arrival sequence, every event's
//!   timestamp is at least `running_max_timestamp - max_lateness`. An
//!   ingestor with a watermark lateness bound of at least `max_lateness`
//!   can therefore re-sequence a drop-free, mangle-free chaos stream
//!   *exactly* (see `mfp-mlops::ingest`).

use mfp_dram::event::{MemEvent, UeEvent};
use mfp_dram::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Periodic total-loss windows: everything observed inside
/// `[k*period, k*period + length)` is dropped (a collector outage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstLoss {
    /// Distance between the starts of successive outage windows.
    pub period: SimDuration,
    /// Length of each outage window.
    pub length: SimDuration,
}

impl BurstLoss {
    /// Whether an event observed at `t` falls into an outage window.
    pub fn covers(&self, t: SimTime) -> bool {
        let period = self.period.as_secs().max(1);
        (t.as_secs() % period) < self.length.as_secs()
    }
}

/// Corruption model for one pass over a clean stream.
///
/// All `*_rate` fields are per-event probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// RNG seed; two runs with equal config produce identical streams.
    pub seed: u64,
    /// Probability an event is silently lost.
    pub drop_rate: f64,
    /// Probability an event is delivered twice (at-least-once shipping).
    pub dup_rate: f64,
    /// Probability an event is delivered late (within `max_lateness`).
    pub late_rate: f64,
    /// Upper bound on delivery delay; also bounds reorder displacement.
    pub max_lateness: SimDuration,
    /// Probability a field is mangled into an out-of-range/nonsense value.
    pub mangle_rate: f64,
    /// Probability the *timestamp itself* is skewed (clock step), possibly
    /// regressing behind earlier events.
    pub skew_rate: f64,
    /// Maximum clock-skew magnitude in either direction.
    pub max_skew: SimDuration,
    /// Optional periodic collector outages.
    pub burst_loss: Option<BurstLoss>,
}

impl ChaosConfig {
    /// Identity: the stream passes through untouched.
    pub fn off() -> Self {
        ChaosConfig {
            seed: 0,
            drop_rate: 0.0,
            dup_rate: 0.0,
            late_rate: 0.0,
            max_lateness: SimDuration::ZERO,
            mangle_rate: 0.0,
            skew_rate: 0.0,
            max_skew: SimDuration::ZERO,
            burst_loss: None,
        }
    }

    /// Lossless hostility: duplicates and bounded-late delivery only.
    /// Every original event survives with its original timestamp, so an
    /// ingestor with `lateness >= max_lateness` reconstructs the clean
    /// stream exactly — the configuration the resilience property tests
    /// run under.
    pub fn lossless(seed: u64) -> Self {
        ChaosConfig {
            seed,
            dup_rate: 0.10,
            late_rate: 0.35,
            max_lateness: SimDuration::minutes(30),
            ..ChaosConfig::off()
        }
    }

    /// Everything at once: drops, duplicates, heavy reorder, mangled
    /// fields, clock skew and periodic collector outages.
    pub fn hostile(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_rate: 0.05,
            dup_rate: 0.10,
            late_rate: 0.40,
            max_lateness: SimDuration::hours(1),
            mangle_rate: 0.05,
            skew_rate: 0.02,
            max_skew: SimDuration::hours(2),
            burst_loss: Some(BurstLoss {
                period: SimDuration::days(30),
                length: SimDuration::hours(6),
            }),
        }
    }

    /// The hostile mix scaled by `rate` in `[0, 1]`: `hostile_at(s, 0.0)`
    /// is clean delivery, `hostile_at(s, 1.0)` is heavier than
    /// [`ChaosConfig::hostile`]. Used by the `chaos_e2e` corruption sweep.
    pub fn hostile_at(seed: u64, rate: f64) -> Self {
        let r = rate.clamp(0.0, 1.0);
        ChaosConfig {
            seed,
            drop_rate: 0.30 * r,
            dup_rate: 0.40 * r,
            late_rate: 0.50 * r,
            max_lateness: SimDuration::hours(1),
            mangle_rate: 0.20 * r,
            skew_rate: 0.10 * r,
            max_skew: SimDuration::hours(1),
            burst_loss: None,
        }
    }
}

/// What the injector did to the stream (per [`inject_chaos`] call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Events in the corrupted output stream.
    pub delivered: u64,
    /// Events silently lost to `drop_rate`.
    pub dropped: u64,
    /// Events lost to burst outage windows.
    pub burst_dropped: u64,
    /// Extra copies emitted.
    pub duplicated: u64,
    /// Events delivered after their observation time.
    pub delayed: u64,
    /// Events with a mangled field.
    pub mangled: u64,
    /// Events whose timestamp was skewed.
    pub skewed: u64,
}

/// Runs a clean, time-ordered stream through the corruption model and
/// returns the hostile stream in *delivery order* (which may disagree
/// with timestamp order, within the `max_lateness` bound), plus counts of
/// every operation applied.
pub fn inject_chaos(events: &[MemEvent], cfg: &ChaosConfig) -> (Vec<MemEvent>, ChaosStats) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stats = ChaosStats::default();
    // (arrival time, sequence) keyed delivery queue; the sequence keeps
    // equal-arrival ties stable and the whole pass deterministic.
    let mut queue: Vec<(SimTime, u64, MemEvent)> = Vec::with_capacity(events.len());
    let mut seq = 0u64;
    for e in events {
        if cfg.burst_loss.is_some_and(|b| b.covers(e.time())) {
            stats.burst_dropped += 1;
            continue;
        }
        if cfg.drop_rate > 0.0 && rng.random::<f64>() < cfg.drop_rate {
            stats.dropped += 1;
            continue;
        }
        let mut e = *e;
        // Arrival is anchored to the *real* observation time: clock skew
        // corrupts the embedded timestamp, not the wire delivery order.
        let real_time = e.time();
        if cfg.skew_rate > 0.0 && rng.random::<f64>() < cfg.skew_rate {
            e = skew_timestamp(&e, cfg.max_skew, &mut rng);
            stats.skewed += 1;
        }
        if cfg.mangle_rate > 0.0 && rng.random::<f64>() < cfg.mangle_rate {
            e = mangle(&e, &mut rng);
            stats.mangled += 1;
        }
        let copies = if cfg.dup_rate > 0.0 && rng.random::<f64>() < cfg.dup_rate {
            stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let arrival = if cfg.late_rate > 0.0
                && cfg.max_lateness > SimDuration::ZERO
                && rng.random::<f64>() < cfg.late_rate
            {
                stats.delayed += 1;
                real_time + SimDuration::secs(rng.random_range(1..=cfg.max_lateness.as_secs()))
            } else {
                real_time
            };
            queue.push((arrival, seq, e));
            seq += 1;
        }
    }
    queue.sort_by_key(|&(arrival, s, _)| (arrival, s));
    stats.delivered = queue.len() as u64;
    (queue.into_iter().map(|(_, _, e)| e).collect(), stats)
}

/// Steps the event's clock by up to `max_skew` in either direction
/// (regressions saturate at the epoch).
fn skew_timestamp(e: &MemEvent, max_skew: SimDuration, rng: &mut StdRng) -> MemEvent {
    if max_skew == SimDuration::ZERO {
        return *e;
    }
    let delta = SimDuration::secs(rng.random_range(1..=max_skew.as_secs()));
    let t = if rng.random::<f64>() < 0.5 {
        e.time().saturating_sub(delta)
    } else {
        e.time() + delta
    };
    e.with_time(t)
}

/// Corrupts one field into a value schema/range validation must reject:
/// out-of-range address components, an empty (physically meaningless)
/// error transfer, a zero-count storm, or a CE reincarnated as a UE on a
/// garbage address (a firmware misreport).
fn mangle(e: &MemEvent, rng: &mut StdRng) -> MemEvent {
    let mut e = *e;
    match rng.random_range(0..5u8) {
        0 => match &mut e {
            MemEvent::Ce(ce) => ce.addr.rank = u8::MAX,
            MemEvent::Ue(ue) => ue.addr.rank = u8::MAX,
            MemEvent::Storm(s) => s.count = 0,
        },
        1 => match &mut e {
            MemEvent::Ce(ce) => ce.addr.bank = u8::MAX,
            MemEvent::Ue(ue) => ue.addr.bank = u8::MAX,
            MemEvent::Storm(s) => s.count = 0,
        },
        2 => match &mut e {
            MemEvent::Ce(ce) => ce.addr.row = u32::MAX,
            MemEvent::Ue(ue) => ue.addr.row = u32::MAX,
            MemEvent::Storm(s) => s.count = 0,
        },
        3 => match &mut e {
            MemEvent::Ce(ce) => ce.addr.col = u16::MAX,
            MemEvent::Ue(ue) => ue.addr.col = u16::MAX,
            MemEvent::Storm(s) => s.count = 0,
        },
        _ => match e {
            MemEvent::Ce(ce) => {
                e = MemEvent::Ce(mfp_dram::event::CeEvent {
                    transfer: mfp_dram::bus::ErrorTransfer::new(),
                    ..ce
                });
            }
            MemEvent::Ue(ue) => {
                e = MemEvent::Ue(UeEvent {
                    transfer: mfp_dram::bus::ErrorTransfer::new(),
                    ..ue
                });
            }
            MemEvent::Storm(ref mut s) => s.count = 0,
        },
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::{CellAddr, DimmId};
    use mfp_dram::bus::ErrorTransfer;
    use mfp_dram::event::CeEvent;
    use std::collections::HashMap;

    fn ce(t: u64, server: u32) -> MemEvent {
        MemEvent::Ce(CeEvent {
            time: SimTime::from_secs(t),
            dimm: DimmId::new(server, 0),
            addr: CellAddr::new(0, (t % 16) as u8, (t % 1000) as u32, (t % 64) as u16),
            transfer: ErrorTransfer::from_bits([(0, (t % 72) as u8)]),
        })
    }

    fn stream(n: u64) -> Vec<MemEvent> {
        (0..n).map(|k| ce(100 + k * 120, (k % 5) as u32)).collect()
    }

    /// Multiset of events (exact equality, transfers included).
    fn multiset(events: &[MemEvent]) -> HashMap<MemEvent, u64> {
        let mut m = HashMap::new();
        for e in events {
            *m.entry(*e).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn off_is_identity() {
        let clean = stream(200);
        let (out, stats) = inject_chaos(&clean, &ChaosConfig::off());
        assert_eq!(out, clean);
        assert_eq!(stats.delivered, 200);
        assert_eq!(stats.dropped + stats.duplicated + stats.mangled, 0);
    }

    #[test]
    fn same_config_same_stream() {
        let clean = stream(300);
        let cfg = ChaosConfig::hostile(9);
        let (a, sa) = inject_chaos(&clean, &cfg);
        let (b, sb) = inject_chaos(&clean, &cfg);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = inject_chaos(&clean, &ChaosConfig::hostile(10));
        assert_ne!(a, c, "different seeds must corrupt differently");
    }

    #[test]
    fn lossless_preserves_every_event() {
        let clean = stream(400);
        let cfg = ChaosConfig::lossless(3);
        let (out, stats) = inject_chaos(&clean, &cfg);
        assert_eq!(stats.dropped + stats.burst_dropped + stats.mangled, 0);
        assert_eq!(out.len() as u64, 400 + stats.duplicated);
        // Output minus duplicate copies is exactly the input multiset.
        let mut m = multiset(&out);
        for e in &clean {
            let n = m.get_mut(e).expect("original event must survive");
            *n -= 1;
        }
        let extras: u64 = m.values().sum();
        assert_eq!(extras, stats.duplicated);
        assert!(stats.delayed > 0, "lossless preset must exercise reorder");
    }

    #[test]
    fn reorder_displacement_is_bounded() {
        let clean = stream(500);
        let cfg = ChaosConfig::lossless(17);
        let (out, _) = inject_chaos(&clean, &cfg);
        // Watermark invariant: every delivered event's timestamp is at
        // least the running max timestamp minus the lateness bound.
        let mut high = SimTime::ZERO;
        for e in &out {
            assert!(
                e.time() >= high.saturating_sub(cfg.max_lateness),
                "displacement beyond the lateness bound"
            );
            high = high.max(e.time());
        }
    }

    #[test]
    fn hostile_applies_every_failure_mode() {
        // 90 days of events so burst windows (30d period) are hit.
        let clean: Vec<MemEvent> = (0..3000)
            .map(|k| ce(k * 2600, (k % 7) as u32))
            .collect();
        let (out, stats) = inject_chaos(&clean, &ChaosConfig::hostile(1));
        assert!(stats.dropped > 0);
        assert!(stats.burst_dropped > 0);
        assert!(stats.duplicated > 0);
        assert!(stats.delayed > 0);
        assert!(stats.mangled > 0);
        assert!(stats.skewed > 0);
        assert_eq!(out.len() as u64, stats.delivered);
        assert!(
            stats.delivered < 3000 + stats.duplicated,
            "drops must shrink the stream"
        );
    }

    #[test]
    fn burst_loss_covers_periodic_windows() {
        let b = BurstLoss {
            period: SimDuration::days(30),
            length: SimDuration::hours(6),
        };
        assert!(b.covers(SimTime::ZERO));
        assert!(b.covers(SimTime::from_secs(30 * 86_400 + 100)));
        assert!(!b.covers(SimTime::from_secs(30 * 86_400 + 7 * 3600)));
    }

    #[test]
    fn mangled_fields_fail_validation() {
        let clean = stream(300);
        let cfg = ChaosConfig {
            mangle_rate: 1.0,
            ..ChaosConfig::off()
        };
        let (out, stats) = inject_chaos(&clean, &cfg);
        assert_eq!(stats.mangled, 300);
        let geom = mfp_dram::geometry::DeviceGeometry::default();
        for e in &out {
            let bad = match e {
                MemEvent::Ce(c) => !c.addr.is_valid(&geom, 2) || c.transfer.is_empty(),
                MemEvent::Ue(u) => !u.addr.is_valid(&geom, 2) || u.transfer.is_empty(),
                MemEvent::Storm(s) => s.count == 0,
            };
            assert!(bad, "mangled event still validates: {e}");
        }
    }

    #[test]
    fn skew_can_regress_timestamps() {
        let clean = stream(400);
        let cfg = ChaosConfig {
            skew_rate: 1.0,
            max_skew: SimDuration::hours(12),
            ..ChaosConfig::off()
        };
        let (out, stats) = inject_chaos(&clean, &cfg);
        assert_eq!(stats.skewed, 400);
        let regressed = out
            .windows(2)
            .filter(|w| w[1].time() < w[0].time())
            .count();
        assert!(regressed > 0, "large skew must produce regressions");
    }
}
