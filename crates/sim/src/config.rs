//! Fleet simulation configuration and per-platform calibration.
//!
//! The paper's dataset is proprietary; the simulator substitutes it with a
//! synthetic fleet whose *statistical shape* is calibrated to the published
//! aggregates (Table I rates, Fig. 4 fault-mode mixes, Fig. 5 bit-pattern
//! signatures). Every knob lives here so the calibration is auditable.

use crate::ras::RasPolicy;
use mfp_dram::geometry::Platform;
use mfp_dram::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Which population a simulated DIMM belongs to.
///
/// The fleet generator draws each DIMM's category first, then samples faults
/// consistent with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DimmCategory {
    /// Stable fault(s) only: produces CEs, never a UE.
    Benign,
    /// A degrading fault that may escalate to a (predictable) UE.
    Degrading,
    /// An instant catastrophic fault: UE with no actionable CE warning.
    Sudden,
}

/// Probability mix over [`DimmCategory`] for one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CategoryMix {
    /// Fraction of benign DIMMs.
    pub benign: f64,
    /// Fraction of degrading DIMMs.
    pub degrading: f64,
    /// Fraction of sudden-failure DIMMs.
    pub sudden: f64,
}

impl CategoryMix {
    /// Validates that the mix sums to ~1.
    pub fn is_normalized(&self) -> bool {
        (self.benign + self.degrading + self.sudden - 1.0).abs() < 1e-9
    }
}

/// Mix over spatial fault modes used when sampling a fault.
///
/// Weights need not sum to one; they are normalized at sampling time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModeMix {
    /// Single-cell faults.
    pub cell: f64,
    /// Single-row faults.
    pub row: f64,
    /// Single-column faults.
    pub column: f64,
    /// Whole-bank faults.
    pub bank: f64,
    /// Whole-device (chip I/O) faults.
    pub device: f64,
}

/// Temporal behaviour of degrading faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Initial per-bit error probability at fault onset.
    pub base_severity: f64,
    /// Severity doubling time in days.
    pub growth_tau_days: f64,
    /// Severity ceiling.
    pub max_severity: f64,
    /// Probability that a degrading fault plateaus before causing a UE
    /// (irreducible prediction noise: these look risky but never fail).
    pub stall_prob: f64,
    /// Severity at which a plateaued fault stops growing.
    pub stall_severity: f64,
    /// Halving time (days) of a stalled fault's severity.
    pub stall_decay_tau_days: f64,
    /// Probability that a degrading fault spreads to a second device
    /// (connector / shared-I/O path) once severe.
    pub spread_prob: f64,
    /// Severity threshold that triggers the spread.
    pub spread_severity: f64,
}

/// Bit-pattern signature knobs for one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternConfig {
    /// Probability that a degrading fault carries the stride-4 beat-mask
    /// signature (column-select defect): beats {b, b+4}.
    pub stride4_prob: f64,
    /// Probability that a stride-4 mask lands on odd (weakened) beats —
    /// only meaningful on Purley where odd beats have reduced protection.
    pub stride4_odd_prob: f64,
    /// Probability that a degrading fault is device-wide (all 4 DQs).
    pub device_wide_prob: f64,
    /// Fraction of *benign* faults that mimic the risky signature
    /// (false-positive pressure for the predictor).
    pub mimic_prob: f64,
}

/// Full configuration of one platform's sub-fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// The platform being simulated.
    pub platform: Platform,
    /// Number of DIMMs that experience CEs (the paper's study population).
    pub dimms_with_ces: usize,
    /// Additional DIMMs whose only event is a sudden UE (no prior CEs).
    pub sudden_only_dimms: usize,
    /// Category mix among the CE population.
    pub categories: CategoryMix,
    /// Fault-mode mix for benign faults.
    pub benign_modes: FaultModeMix,
    /// Fault-mode mix for degrading faults.
    pub degrading_modes: FaultModeMix,
    /// Degradation dynamics.
    pub degradation: DegradationConfig,
    /// Bit-pattern signatures.
    pub patterns: PatternConfig,
    /// Fraction of x8-width DIMMs (remainder are x4).
    pub x8_fraction: f64,
    /// Mean extra benign faults per DIMM (Poisson).
    pub extra_fault_lambda: f64,
}

/// Whole-fleet simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Per-platform sub-fleets.
    pub platforms: Vec<PlatformConfig>,
    /// Simulated observation horizon.
    pub horizon: SimDuration,
    /// Master RNG seed: every run with the same config is identical.
    pub seed: u64,
    /// CE-storm threshold: CE interrupts per minute that trigger a storm
    /// event and logging suppression.
    pub storm_threshold: u32,
    /// How long CE logging stays suppressed after a storm.
    pub storm_suppression: SimDuration,
    /// Optional RAS mitigation policy (page offlining + PPR). The
    /// calibrated fleets leave this off — survivorship effects are baked
    /// into the benign population instead; turn it on for the RAS
    /// ablation.
    pub ras: Option<RasPolicy>,
    /// Upper bound on the worker threads `simulate_fleet` auto-selects
    /// from `available_parallelism` (clamped to at least 1). Memory per
    /// worker is one shard-sized `BmcLog` plus the decode cache, so an
    /// unbounded thread count on a many-core host trades little wall
    /// clock for a lot of resident memory; 16 is where the calibrated
    /// fleets stop scaling. Explicit worker counts
    /// (`simulate_fleet_with_workers`, `ShardConfig::workers`) are never
    /// capped by this. When the cap bites, `simulate_fleet` records it on
    /// the `sim_fleet_workers_capped` counter and the chosen count on the
    /// `sim_fleet_workers` gauge.
    #[serde(default = "default_max_auto_workers")]
    pub max_auto_workers: usize,
}

/// Default for [`FleetConfig::max_auto_workers`].
pub(crate) fn default_max_auto_workers() -> usize {
    16
}

impl FleetConfig {
    /// The calibrated three-platform fleet at a given scale.
    ///
    /// `scale` divides the paper's population sizes (Table I: Purley >50k /
    /// Whitley >10k / K920 >30k DIMMs with CEs). `scale = 1.0` reproduces
    /// the full population; `scale = 20.0` is a laptop-friendly 1:20 fleet.
    pub fn calibrated(scale: f64, seed: u64) -> Self {
        assert!(scale >= 1.0, "scale must be >= 1");
        let s = |n: usize, floor: usize| ((n as f64 / scale).round() as usize).max(floor);
        FleetConfig {
            platforms: vec![
                PlatformConfig::purley(s(50_000, 50), s(540, 2)),
                PlatformConfig::whitley(s(10_000, 50), s(220, 2)),
                PlatformConfig::k920(s(30_000, 50), s(100, 2)),
            ],
            horizon: SimDuration::days(270),
            seed,
            storm_threshold: 10,
            storm_suppression: SimDuration::hours(1),
            ras: None,
            max_auto_workers: default_max_auto_workers(),
        }
    }

    /// The fleet used for prediction experiments (Table II): per-platform
    /// scales chosen so every platform has enough UE DIMMs in the test
    /// window for stable metrics, while staying laptop-sized. Per-DIMM
    /// rates (and therefore Table I proportions) are unaffected by scale.
    pub fn experiment(seed: u64) -> Self {
        let mut cfg = FleetConfig::calibrated(10.0, seed);
        for pc in &mut cfg.platforms {
            match pc.platform {
                Platform::IntelPurley => {}
                Platform::IntelWhitley => {
                    // 1:2 instead of 1:10.
                    pc.dimms_with_ces = 5_000;
                    pc.sudden_only_dimms = 110;
                }
                Platform::K920 => {
                    // 1:6 instead of 1:10.
                    pc.dimms_with_ces = 5_000;
                    pc.sudden_only_dimms = 17;
                }
            }
        }
        cfg
    }

    /// A small smoke-test fleet (hundreds of DIMMs, fast to simulate).
    pub fn smoke(seed: u64) -> Self {
        let mut cfg = FleetConfig::calibrated(200.0, seed);
        cfg.horizon = SimDuration::days(120);
        cfg
    }

    /// The sub-fleet configuration for `platform`, if present.
    pub fn platform(&self, platform: Platform) -> Option<&PlatformConfig> {
        self.platforms.iter().find(|p| p.platform == platform)
    }
}

impl PlatformConfig {
    /// Calibrated Intel Purley sub-fleet.
    ///
    /// Targets: ~4% of CE DIMMs reach UE; 73% of UE DIMMs predictable;
    /// single-device faults dominate UEs (Finding 2); risky CE signature =
    /// 2 DQ / 2 beats / 4-beat interval (Fig. 5).
    pub fn purley(dimms_with_ces: usize, sudden_only_dimms: usize) -> Self {
        PlatformConfig {
            platform: Platform::IntelPurley,
            dimms_with_ces,
            sudden_only_dimms,
            categories: CategoryMix {
                benign: 0.947,
                degrading: 0.053,
                sudden: 0.0,
            },
            benign_modes: FaultModeMix {
                cell: 0.66,
                row: 0.12,
                column: 0.10,
                bank: 0.07,
                device: 0.05,
            },
            degrading_modes: FaultModeMix {
                cell: 0.08,
                row: 0.38,
                column: 0.16,
                bank: 0.30,
                device: 0.08,
            },
            degradation: DegradationConfig {
                base_severity: 0.05,
                growth_tau_days: 12.0,
                max_severity: 0.95,
                stall_prob: 0.20,
                stall_severity: 0.06,
                stall_decay_tau_days: 18.0,
                spread_prob: 0.10,
                spread_severity: 0.30,
            },
            patterns: PatternConfig {
                stride4_prob: 0.70,
                stride4_odd_prob: 0.75,
                device_wide_prob: 0.10,
                mimic_prob: 0.005,
            },
            x8_fraction: 0.08,
            extra_fault_lambda: 0.25,
        }
    }

    /// Calibrated Intel Whitley sub-fleet.
    ///
    /// Targets: ~4% UE rate but only 42% predictable; UEs dominated by
    /// multi-device faults; risky CE signature = 4 error DQs / 5 error
    /// beats, intervals not significant (Fig. 5).
    pub fn whitley(dimms_with_ces: usize, sudden_only_dimms: usize) -> Self {
        PlatformConfig {
            platform: Platform::IntelWhitley,
            dimms_with_ces,
            sudden_only_dimms,
            categories: CategoryMix {
                benign: 0.966,
                degrading: 0.034,
                sudden: 0.0,
            },
            benign_modes: FaultModeMix {
                cell: 0.60,
                row: 0.13,
                column: 0.10,
                bank: 0.09,
                device: 0.08,
            },
            degrading_modes: FaultModeMix {
                cell: 0.04,
                row: 0.22,
                column: 0.08,
                bank: 0.26,
                device: 0.40,
            },
            degradation: DegradationConfig {
                base_severity: 0.05,
                growth_tau_days: 10.0,
                max_severity: 0.95,
                stall_prob: 0.45,
                stall_severity: 0.08,
                stall_decay_tau_days: 18.0,
                spread_prob: 0.85,
                spread_severity: 0.20,
            },
            patterns: PatternConfig {
                stride4_prob: 0.15,
                stride4_odd_prob: 0.50,
                device_wide_prob: 0.60,
                mimic_prob: 0.012,
            },
            x8_fraction: 0.05,
            extra_fault_lambda: 0.25,
        }
    }

    /// Calibrated K920 sub-fleet.
    ///
    /// Targets: ~2% UE rate, 82% predictable; multi-device faults dominate
    /// UEs; fewer sudden failures than either Intel platform.
    pub fn k920(dimms_with_ces: usize, sudden_only_dimms: usize) -> Self {
        PlatformConfig {
            platform: Platform::K920,
            dimms_with_ces,
            sudden_only_dimms,
            categories: CategoryMix {
                benign: 0.968,
                degrading: 0.032,
                sudden: 0.0,
            },
            benign_modes: FaultModeMix {
                cell: 0.64,
                row: 0.12,
                column: 0.10,
                bank: 0.08,
                device: 0.06,
            },
            degrading_modes: FaultModeMix {
                cell: 0.05,
                row: 0.25,
                column: 0.10,
                bank: 0.28,
                device: 0.32,
            },
            degradation: DegradationConfig {
                base_severity: 0.05,
                growth_tau_days: 12.0,
                max_severity: 0.95,
                stall_prob: 0.32,
                stall_severity: 0.07,
                stall_decay_tau_days: 18.0,
                spread_prob: 0.80,
                spread_severity: 0.22,
            },
            patterns: PatternConfig {
                stride4_prob: 0.20,
                stride4_odd_prob: 0.50,
                device_wide_prob: 0.50,
                mimic_prob: 0.012,
            },
            x8_fraction: 0.04,
            extra_fault_lambda: 0.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_includes_all_platforms() {
        let cfg = FleetConfig::calibrated(20.0, 1);
        assert_eq!(cfg.platforms.len(), 3);
        for p in Platform::ALL {
            assert!(cfg.platform(p).is_some(), "{p} missing");
        }
    }

    #[test]
    fn category_mixes_are_normalized() {
        for pc in FleetConfig::calibrated(20.0, 1).platforms {
            assert!(pc.categories.is_normalized(), "{}", pc.platform);
        }
    }

    #[test]
    fn scale_divides_population() {
        let full = FleetConfig::calibrated(1.0, 1);
        let tenth = FleetConfig::calibrated(10.0, 1);
        let n_full = full.platform(Platform::IntelPurley).unwrap().dimms_with_ces;
        let n_tenth = tenth
            .platform(Platform::IntelPurley)
            .unwrap()
            .dimms_with_ces;
        assert_eq!(n_full, 50_000);
        assert_eq!(n_tenth, 5_000);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_fractional_upscale() {
        let _ = FleetConfig::calibrated(0.5, 1);
    }

    #[test]
    fn population_floor_applies() {
        let cfg = FleetConfig::calibrated(10_000.0, 1);
        for pc in &cfg.platforms {
            assert!(pc.dimms_with_ces >= 50);
        }
    }

    #[test]
    fn ue_rate_targets_match_table1_shape() {
        // Sanity on the calibration itself: P(UE) ordering and the
        // predictable share ordering follow Table I.
        let cfg = FleetConfig::calibrated(1.0, 1);
        let p = cfg.platform(Platform::IntelPurley).unwrap();
        let w = cfg.platform(Platform::IntelWhitley).unwrap();
        let k = cfg.platform(Platform::K920).unwrap();
        // Degrading share (predictable UE source): Purley > Whitley ~ K920.
        assert!(p.categories.degrading > w.categories.degrading);
        assert!(p.categories.degrading > k.categories.degrading);
        // Sudden-only populations relative to UE counts: Whitley largest.
        let sudden_share = |pc: &PlatformConfig| {
            let predictable = pc.dimms_with_ces as f64 * pc.categories.degrading;
            pc.sudden_only_dimms as f64 / (predictable + pc.sudden_only_dimms as f64)
        };
        assert!(sudden_share(w) > sudden_share(p));
        assert!(sudden_share(p) > sudden_share(k));
    }
}
