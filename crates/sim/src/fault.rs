//! DRAM fault models: spatial footprints, bit-pattern signatures and
//! temporal severity evolution.
//!
//! The taxonomy follows the field studies the paper builds on (Sridharan et
//! al. \[10, 11\], Beigi et al. HPCA'23 \[12\]): cell, row, column, bank and
//! whole-device faults within one chip, plus multi-device faults on shared
//! I/O paths. A fault owns
//!
//! * a *spatial footprint* — which addresses it can corrupt,
//! * a *bit-pattern signature* — which (DQ, beat) grid positions it can
//!   flip (e.g. the stride-4 beat signature of a column-select defect),
//! * a *severity profile* — the per-bit flip probability and how it evolves
//!   (stable for benign faults, exponentially degrading for faults on the
//!   way to an uncorrectable error, optionally plateauing), and
//! * an optional *spread plan* — escalation onto a second device through a
//!   shared connector path, the dominant UE mechanism on SDDC-protected
//!   platforms (Whitley / K920).

use mfp_dram::address::{CellAddr, Region};
use mfp_dram::bus::ErrorTransfer;
use mfp_dram::geometry::{DataWidth, DeviceGeometry, BURST_BEATS};
use mfp_dram::time::{SimDuration, SimTime};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// High-level spatial fault mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultMode {
    /// A single stuck/weak cell.
    Cell,
    /// A whole row (word-line defect).
    Row,
    /// A whole column (bit-line / column-select defect).
    Column,
    /// A whole bank (sense-amp / decoder defect).
    Bank,
    /// A whole device (chip I/O or internal logic).
    Device,
    /// Multiple devices at once (connector / shared bus).
    MultiDevice,
}

impl FaultMode {
    /// All modes in display order.
    pub const ALL: [FaultMode; 6] = [
        FaultMode::Cell,
        FaultMode::Row,
        FaultMode::Column,
        FaultMode::Bank,
        FaultMode::Device,
        FaultMode::MultiDevice,
    ];

    /// Mean rate (per day) at which accesses hit this fault's footprint —
    /// larger footprints are hit more often by demand traffic and patrol
    /// scrub.
    pub fn base_hit_rate_per_day(self) -> f64 {
        match self {
            FaultMode::Cell => 0.8,
            FaultMode::Row => 3.0,
            FaultMode::Column => 2.5,
            FaultMode::Bank => 5.0,
            FaultMode::Device => 6.5,
            FaultMode::MultiDevice => 8.0,
        }
    }
}

impl std::fmt::Display for FaultMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultMode::Cell => "cell",
            FaultMode::Row => "row",
            FaultMode::Column => "column",
            FaultMode::Bank => "bank",
            FaultMode::Device => "device",
            FaultMode::MultiDevice => "multi-device",
        };
        write!(f, "{s}")
    }
}

/// Temporal evolution of a fault's per-bit flip probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeverityProfile {
    /// Severity at onset.
    pub base: f64,
    /// Doubling time in days (ignored unless `degrading`).
    pub tau_days: f64,
    /// Hard ceiling.
    pub max: f64,
    /// Whether severity grows over time.
    pub degrading: bool,
    /// If set, growth stops once severity reaches this value (a degrading
    /// fault that plateaus and never becomes a UE).
    pub stall_at: Option<f64>,
    /// Halving time (days) of a stalled fault's severity: plateaued faults
    /// fade as sparing / page-offlining takes effect. `None` = flat
    /// plateau.
    pub stall_decay_tau_days: Option<f64>,
}

impl SeverityProfile {
    /// A stable (benign) profile.
    pub fn stable(severity: f64) -> Self {
        SeverityProfile {
            base: severity,
            tau_days: f64::INFINITY,
            max: severity,
            degrading: false,
            stall_at: None,
            stall_decay_tau_days: None,
        }
    }

    /// An exponentially degrading profile.
    pub fn degrading(base: f64, tau_days: f64, max: f64) -> Self {
        SeverityProfile {
            base,
            tau_days,
            max,
            degrading: true,
            stall_at: None,
            stall_decay_tau_days: None,
        }
    }

    /// Severity after `elapsed` time since onset.
    pub fn severity(&self, elapsed: SimDuration) -> f64 {
        if !self.degrading {
            return self.base;
        }
        let grown = self.base * (elapsed.as_days_f64() / self.tau_days).exp2();
        let capped = grown.min(self.max);
        let Some(stall) = self.stall_at else {
            return capped;
        };
        if capped < stall {
            return capped;
        }
        // Stalled. Optionally decay from the moment the plateau was hit.
        match self.stall_decay_tau_days {
            None => stall,
            Some(decay_tau) => {
                let t_stall = self.tau_days * (stall / self.base).log2().max(0.0);
                let since = (elapsed.as_days_f64() - t_stall).max(0.0);
                stall * (-since / decay_tau).exp2()
            }
        }
    }

    /// Days after onset at which severity reaches `target` (ignoring the
    /// stall), or `None` for stable profiles or unreachable targets.
    pub fn days_to_reach(&self, target: f64) -> Option<f64> {
        if !self.degrading || target <= self.base {
            return if target <= self.base { Some(0.0) } else { None };
        }
        if target > self.max || self.stall_at.is_some_and(|s| target > s) {
            return None;
        }
        Some(self.tau_days * (target / self.base).log2())
    }
}

/// Escalation of a fault onto a second device via a shared I/O path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// The second device that starts erring.
    pub device: u8,
    /// When the spread activates.
    pub onset: SimTime,
    /// Severity evolution of the secondary device.
    pub profile: SeverityProfile,
}

/// One fault instance on a DIMM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// Spatial mode.
    pub mode: FaultMode,
    /// Primary affected device (index within the rank).
    pub device: u8,
    /// Additional devices affected from onset (multi-device faults).
    pub extra_devices: Vec<u8>,
    /// Spatial footprint within the rank.
    pub region: Region,
    /// Within-device DQ lanes the fault can flip (bit `i` = lane `i`).
    pub dq_mask: u8,
    /// Beats the fault can flip (bit `i` = beat `i`).
    pub beat_mask: u8,
    /// When the fault appears.
    pub onset: SimTime,
    /// Severity evolution.
    pub profile: SeverityProfile,
    /// Rate at which accesses hit the footprint, per day.
    pub hit_rate_per_day: f64,
    /// Optional escalation to a second device.
    pub spread: Option<Spread>,
}

impl Fault {
    /// Severity of the primary device at time `t` (0 before onset).
    pub fn severity_at(&self, t: SimTime) -> f64 {
        match t.checked_duration_since(self.onset) {
            Some(d) => self.profile.severity(d),
            None => 0.0,
        }
    }

    /// Severity of the spread device at time `t`, if the spread is active.
    pub fn spread_severity_at(&self, t: SimTime) -> Option<(u8, f64)> {
        let sp = self.spread.as_ref()?;
        let d = t.checked_duration_since(sp.onset)?;
        Some((sp.device, sp.profile.severity(d)))
    }

    /// Samples the burst error pattern produced when an access hits the
    /// footprint at time `t`. Always contains at least one erroneous bit.
    pub fn sample_transfer<R: Rng>(
        &self,
        t: SimTime,
        width: DataWidth,
        rng: &mut R,
    ) -> ErrorTransfer {
        let mut transfer = ErrorTransfer::new();
        let w = width.dq_per_device();
        let sev = self.severity_at(t);

        let flip_device = |dev: u8, severity: f64, transfer: &mut ErrorTransfer, rng: &mut R| {
            for beat in 0..BURST_BEATS {
                if (self.beat_mask >> beat) & 1 == 0 {
                    continue;
                }
                for dq in 0..w {
                    if (self.dq_mask >> dq) & 1 == 0 {
                        continue;
                    }
                    if rng.random::<f64>() < severity {
                        transfer.set(beat, dev * w + dq);
                    }
                }
            }
        };

        flip_device(self.device, sev, &mut transfer, rng);
        for &dev in &self.extra_devices {
            flip_device(dev, sev, &mut transfer, rng);
        }
        if let Some((dev, ssev)) = self.spread_severity_at(t) {
            flip_device(dev, ssev, &mut transfer, rng);
        }

        if transfer.is_empty() {
            // The access observed the fault: guarantee one erroneous bit.
            let beat = random_set_bit(self.beat_mask, rng);
            let dq = random_set_bit(self.dq_mask, rng);
            transfer.set(beat, self.device * w + dq.min(w - 1));
        }
        transfer
    }

    /// Samples a representative failing address inside the footprint.
    pub fn sample_addr<R: Rng>(&self, geom: &DeviceGeometry, rng: &mut R) -> CellAddr {
        match self.region {
            Region::Cell { addr } => addr,
            Region::Row { rank, bank, row } => CellAddr::new(
                rank,
                bank,
                row,
                rng.random_range(0..geom.cols() as u16),
            ),
            Region::Column { rank, bank, col } => {
                CellAddr::new(rank, bank, rng.random_range(0..geom.rows()), col)
            }
            Region::Bank { rank, bank } => CellAddr::new(
                rank,
                bank,
                rng.random_range(0..geom.rows()),
                rng.random_range(0..geom.cols() as u16),
            ),
            Region::Rank { rank } => CellAddr::new(
                rank,
                rng.random_range(0..geom.banks() as u8),
                rng.random_range(0..geom.rows()),
                rng.random_range(0..geom.cols() as u16),
            ),
        }
    }

    /// All devices this fault can touch (primary, extra, spread).
    pub fn devices(&self) -> Vec<u8> {
        let mut v = vec![self.device];
        v.extend_from_slice(&self.extra_devices);
        if let Some(sp) = &self.spread {
            v.push(sp.device);
        }
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Picks a uniformly random set bit index of `mask` (0 if `mask == 0`).
fn random_set_bit<R: Rng>(mask: u8, rng: &mut R) -> u8 {
    let n = mask.count_ones();
    if n == 0 {
        return 0;
    }
    let mut k = rng.random_range(0..n);
    for i in 0..8 {
        if (mask >> i) & 1 == 1 {
            if k == 0 {
                return i;
            }
            k -= 1;
        }
    }
    unreachable!("mask had fewer set bits than counted")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn sample_fault() -> Fault {
        Fault {
            mode: FaultMode::Row,
            device: 5,
            extra_devices: vec![],
            region: Region::Row {
                rank: 0,
                bank: 3,
                row: 42,
            },
            dq_mask: 0b0011,
            beat_mask: 0b0010_0010, // beats 1 and 5: the stride-4 signature
            onset: SimTime::from_secs(0),
            profile: SeverityProfile::degrading(0.02, 7.0, 0.95),
            hit_rate_per_day: 8.0,
            spread: None,
        }
    }

    #[test]
    fn stable_severity_is_constant() {
        let p = SeverityProfile::stable(0.05);
        assert_eq!(p.severity(SimDuration::ZERO), 0.05);
        assert_eq!(p.severity(SimDuration::days(100)), 0.05);
    }

    #[test]
    fn degrading_severity_doubles_per_tau() {
        let p = SeverityProfile::degrading(0.02, 7.0, 0.95);
        let s0 = p.severity(SimDuration::ZERO);
        let s7 = p.severity(SimDuration::days(7));
        let s14 = p.severity(SimDuration::days(14));
        assert!((s7 / s0 - 2.0).abs() < 1e-9);
        assert!((s14 / s0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn severity_caps_at_max() {
        let p = SeverityProfile::degrading(0.5, 1.0, 0.95);
        assert_eq!(p.severity(SimDuration::days(30)), 0.95);
    }

    #[test]
    fn stall_limits_growth() {
        let mut p = SeverityProfile::degrading(0.02, 7.0, 0.95);
        p.stall_at = Some(0.08);
        assert_eq!(p.severity(SimDuration::days(100)), 0.08);
        assert_eq!(p.days_to_reach(0.3), None);
    }

    #[test]
    fn days_to_reach_inverts_severity() {
        let p = SeverityProfile::degrading(0.02, 7.0, 0.95);
        let d = p.days_to_reach(0.16).unwrap();
        assert!((d - 21.0).abs() < 1e-9); // 3 doublings
        assert_eq!(p.days_to_reach(0.01), Some(0.0));
        assert_eq!(SeverityProfile::stable(0.05).days_to_reach(0.2), None);
    }

    #[test]
    fn transfer_respects_masks() {
        let f = sample_fault();
        let mut r = rng();
        for _ in 0..50 {
            let t = f.sample_transfer(SimTime::from_secs(1000), DataWidth::X4, &mut r);
            assert!(!t.is_empty());
            for (beat, dq) in t.iter_bits() {
                assert!(f.beat_mask >> beat & 1 == 1, "beat {beat} outside mask");
                let lane = dq - f.device * 4;
                assert!(f.dq_mask >> lane & 1 == 1, "lane {lane} outside mask");
            }
        }
    }

    #[test]
    fn transfer_grows_with_severity() {
        let f = sample_fault();
        let mut r = rng();
        let early: u32 = (0..200)
            .map(|_| {
                f.sample_transfer(SimTime::from_secs(3600), DataWidth::X4, &mut r)
                    .bit_count()
            })
            .sum();
        let late: u32 = (0..200)
            .map(|_| {
                f.sample_transfer(
                    SimTime::ZERO + SimDuration::days(35),
                    DataWidth::X4,
                    &mut r,
                )
                .bit_count()
            })
            .sum();
        assert!(
            late > early * 2,
            "severity growth must increase bits: early={early} late={late}"
        );
    }

    #[test]
    fn spread_activates_at_onset() {
        let mut f = sample_fault();
        f.spread = Some(Spread {
            device: 9,
            onset: SimTime::ZERO + SimDuration::days(10),
            profile: SeverityProfile::degrading(0.02, 3.0, 0.95),
        });
        assert!(f
            .spread_severity_at(SimTime::ZERO + SimDuration::days(5))
            .is_none());
        let (dev, s) = f
            .spread_severity_at(SimTime::ZERO + SimDuration::days(10))
            .unwrap();
        assert_eq!(dev, 9);
        assert!((s - 0.02).abs() < 1e-12);
        assert_eq!(f.devices(), vec![5, 9]);
    }

    #[test]
    fn sampled_addresses_stay_in_region() {
        let f = sample_fault();
        let geom = DeviceGeometry::default();
        let mut r = rng();
        for _ in 0..50 {
            let a = f.sample_addr(&geom, &mut r);
            assert!(f.region.contains(&a), "{a} outside {:?}", f.region);
            assert!(a.is_valid(&geom, 2));
        }
    }

    #[test]
    fn random_set_bit_uniform_support() {
        let mut r = rng();
        let mask = 0b0010_0010u8;
        let mut seen = [0u32; 8];
        for _ in 0..200 {
            seen[random_set_bit(mask, &mut r) as usize] += 1;
        }
        assert!(seen[1] > 0 && seen[5] > 0);
        assert_eq!(seen[0] + seen[2] + seen[3] + seen[4] + seen[6] + seen[7], 0);
    }

    #[test]
    fn severity_zero_before_onset() {
        let mut f = sample_fault();
        f.onset = SimTime::from_secs(10_000);
        assert_eq!(f.severity_at(SimTime::from_secs(5_000)), 0.0);
    }

    #[test]
    fn mode_hit_rates_ordered_by_footprint() {
        assert!(
            FaultMode::Cell.base_hit_rate_per_day() < FaultMode::Row.base_hit_rate_per_day()
        );
        assert!(
            FaultMode::Row.base_hit_rate_per_day() < FaultMode::Device.base_hit_rate_per_day()
        );
    }
}
