//! Event-driven fleet simulation: skip quiet time, keep the bit-identity
//! oracle.
//!
//! The tick-path engines ([`fleet`](crate::fleet) / [`sharded`](crate::sharded))
//! walk every DIMM through [`simulate_dimm_ras`](crate::dimm::simulate_dimm_ras)
//! and materialize each event as a 152-byte [`MemEvent`] that is then
//! sorted and k-way merged. On a sparse fleet — the production regime the
//! paper studies, where most DIMMs log nothing for months — almost all of
//! that work is bookkeeping around quiet time. This module replaces the
//! execution strategy while keeping the *event stream* bit-identical:
//!
//! * **Scheduled transitions, not ticks.** Each fault's Poisson hit times
//!   are drawn once (the same draws, in the same order, from the same
//!   per-DIMM SplitMix64-derived seed as the oracle) and become scheduled
//!   transition events. A DIMM with no in-horizon transition never enters
//!   any queue; after a UE, its remaining scheduled transitions are
//!   dropped without being simulated — quiet time costs nothing.
//! * **A two-level `(time, dimm_id, seq)` event queue.** Per shard,
//!   transitions are placed into a *calendar queue* (fixed-width time
//!   buckets over the horizon); each small bucket is sorted by the total
//!   key `(time, stream, seq)`, which equals the oracle's stable
//!   `(time, dimm_id, push order)` because streams are laid out in plan
//!   (= ascending `DimmId`) order. Across shards, a k-way heap of shard
//!   heads merges on `(time, dimm_id)` exactly like the sharded engine —
//!   a DIMM lives in one shard, so the key is total.
//! * **SoA event buffers with delta-encoded timestamps.** Events live in
//!   struct-of-arrays form: a kind byte, a `u32` delta from the DIMM's
//!   previous event, a packed address-or-count word, and the transfer's
//!   nonzero beats in a shared lane arena. [`MemEvent`]s are
//!   reconstructed on the fly as the merge hands them to the sink.
//! * **Beat-level decode memoization.** One
//!   [`BeatMemoEcc`](mfp_ecc::platforms::BeatMemoEcc) per worker replaces
//!   the per-platform mutex-guarded burst caches; per-DIMM scratch
//!   (hit lists, storm windows, fault-active flags) is arena-reused
//!   across a worker's DIMMs.
//!
//! # Why the tick path stays the oracle
//!
//! The event engine re-derives the oracle's behaviour from the same RNG
//! streams but shares none of its execution code — decode goes through a
//! different cache, events through a different container, ordering
//! through a different queue. [`tests`] and `tests/prop_events.rs` pin
//! the two engines against each other across seeds, shard counts and
//! worker counts; a refactor that breaks any replicated invariant
//! (draw order, storm bookkeeping, merge key) shows up as a stream
//! mismatch instead of silently shipping.

use crate::config::FleetConfig;
use crate::dimm::{DimmOutcome, StormPolicy};
use crate::fleet::{plan_fleet, DimmTruth, FleetResult, PlannedDimm};
use crate::gen::DimmPlan;
use crate::ras::{AdddcState, RasPolicy, RasReport, RasState};
use mfp_dram::address::{CellAddr, DimmId};
use mfp_dram::bmc::BmcLog;
use mfp_dram::bus::ErrorTransfer;
use mfp_dram::event::{CeEvent, CeStormEvent, MemEvent, UeEvent};
use mfp_dram::geometry::{Platform, BURST_BEATS};
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_ecc::platforms::BeatMemoEcc;
use mfp_ecc::scheme::DecodeOutcome;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;

use crate::sharded::{ShardConfig, ShardStats, ShardedOutcome, ShardedStats};

/// Calendar-queue bucket width. One hour keeps buckets small (tens to a
/// few hundred entries on realistic fleets) without allocating millions
/// of buckets for multi-year horizons.
const BUCKET_SECS: u64 = 3600;

const KIND_CE: u8 = 0;
const KIND_UE: u8 = 1;
const KIND_STORM: u8 = 2;

/// Packs a [`CellAddr`] into one `u64` payload word.
fn pack_addr(addr: &CellAddr) -> u64 {
    (u64::from(addr.rank) << 56)
        | (u64::from(addr.bank) << 48)
        | (u64::from(addr.col) << 32)
        | u64::from(addr.row)
}

/// Inverse of [`pack_addr`].
fn unpack_addr(word: u64) -> CellAddr {
    CellAddr::new(
        (word >> 56) as u8,
        (word >> 48) as u8,
        word as u32,
        (word >> 32) as u16,
    )
}

/// Struct-of-arrays event storage for one shard.
///
/// Events of one DIMM occupy a contiguous run in time order (the per-DIMM
/// simulation is sequential), so no per-event DIMM id is stored — the
/// stream table maps runs back to identities. Timestamps are deltas from
/// the same DIMM's previous event; transfers keep only their nonzero
/// beats (a beat mask plus an offset into a shared lane arena).
#[derive(Debug, Default)]
struct EventBuf {
    kind: Vec<u8>,
    dt: Vec<u32>,
    /// Packed [`CellAddr`] for CE/UE, storm count for storms.
    payload: Vec<u64>,
    /// Bitmask over beats with at least one erroneous lane bit.
    lane_mask: Vec<u8>,
    /// Offset of this event's first nonzero beat in `lanes`.
    lane_off: Vec<u32>,
    /// Nonzero beat lane words, in beat order, shared by all events.
    lanes: Vec<u128>,
}

impl EventBuf {
    fn len(&self) -> usize {
        self.kind.len()
    }

    fn push(&mut self, kind: u8, dt: u32, payload: u64, transfer: Option<&ErrorTransfer>) {
        let (mask, off) = match transfer {
            Some(t) => {
                let off = self.lanes.len() as u32;
                let mut mask = 0u8;
                for (beat, &lanes) in t.beats().iter().enumerate() {
                    if lanes != 0 {
                        mask |= 1 << beat;
                        self.lanes.push(lanes);
                    }
                }
                (mask, off)
            }
            None => (0, self.lanes.len() as u32),
        };
        self.kind.push(kind);
        self.dt.push(dt);
        self.payload.push(payload);
        self.lane_mask.push(mask);
        self.lane_off.push(off);
    }

    /// Reconstructs the [`MemEvent`] stored at `pos`; `time` and `dimm`
    /// come from the index entry and stream table.
    fn event_at(&self, pos: usize, time: SimTime, dimm: DimmId) -> MemEvent {
        if self.kind[pos] == KIND_STORM {
            return MemEvent::Storm(CeStormEvent {
                time,
                dimm,
                count: self.payload[pos] as u32,
            });
        }
        let mut beats = [0u128; BURST_BEATS as usize];
        let mask = self.lane_mask[pos];
        let mut off = self.lane_off[pos] as usize;
        for (beat, slot) in beats.iter_mut().enumerate() {
            if mask & (1 << beat) != 0 {
                *slot = self.lanes[off];
                off += 1;
            }
        }
        let transfer = ErrorTransfer::from_beats(beats);
        let addr = unpack_addr(self.payload[pos]);
        if self.kind[pos] == KIND_CE {
            MemEvent::Ce(CeEvent {
                time,
                dimm,
                addr,
                transfer,
            })
        } else {
            MemEvent::Ue(UeEvent {
                time,
                dimm,
                addr,
                transfer,
            })
        }
    }
}

/// Maps contiguous event runs in an [`EventBuf`] back to DIMM identities.
/// Streams are pushed in plan order, so stream index ascends with
/// [`DimmId`] — the property the within-shard sort key relies on.
#[derive(Debug, Default)]
struct StreamTable {
    dimm: Vec<DimmId>,
    start: Vec<u32>,
    len: Vec<u32>,
}

/// One shard's finished output: SoA events plus the sorted transition
/// index `(abs seconds, stream, event position)`.
struct EventShard {
    shard: usize,
    buf: EventBuf,
    streams: StreamTable,
    index: Vec<(u32, u32, u32)>,
    truths: Vec<DimmTruth>,
    stats: ShardStats,
}

/// Per-worker scratch reused across DIMMs: the hit list, the storm
/// window, and the fault-active flags never reallocate once warm.
#[derive(Debug, Default)]
struct DimmScratch {
    hits: Vec<(SimTime, usize)>,
    fault_active: Vec<bool>,
    recent_ces: VecDeque<SimTime>,
}

/// Simulates one DIMM into the shard's [`EventBuf`].
///
/// This mirrors [`simulate_dimm_ras`](crate::dimm::simulate_dimm_ras)
/// draw for draw — the RNG consumption sequence (hit-time sampling,
/// transfer sampling, address sampling) and the storm/RAS/ADDDC state
/// machines are replicated exactly, including the time-keyed
/// `sort_unstable` over an identically-built hit list, so the emitted
/// stream is bit-identical to the oracle's.
#[allow(clippy::too_many_arguments)]
fn simulate_dimm_events<R: Rng>(
    plan: &DimmPlan,
    platform: Platform,
    horizon: SimDuration,
    storm: StormPolicy,
    ras_policy: Option<RasPolicy>,
    memo: &mut BeatMemoEcc,
    scratch: &mut DimmScratch,
    buf: &mut EventBuf,
    transitions: &mut u64,
    skipped_post_ue: &mut u64,
    rng: &mut R,
) -> DimmOutcome {
    let DimmScratch {
        hits,
        fault_active,
        recent_ces,
    } = scratch;

    // Phase 1: schedule every fault's transition times. Identical draw
    // sequence and sort call to the oracle — the unstable time-keyed sort
    // makes equal-time ordering depend on the input Vec, so the Vec must
    // be built in the same append order.
    hits.clear();
    for (idx, fault) in plan.faults.iter().enumerate() {
        let rate_per_sec = fault.hit_rate_per_day / 86_400.0;
        let mut t = fault.onset;
        // Safety valve: no fault produces more than ~100k hits.
        for _ in 0..100_000 {
            let u: f64 = rng.random::<f64>().max(1e-300);
            let dt = -u.ln() / rate_per_sec;
            if !dt.is_finite() {
                break;
            }
            t += SimDuration::secs(dt.max(1.0) as u64);
            if t >= SimTime::ZERO + horizon {
                break;
            }
            hits.push((t, idx));
        }
    }
    hits.sort_unstable_by_key(|&(t, _)| t);

    let mut outcome = DimmOutcome {
        first_ue: None,
        logged_ces: 0,
        suppressed_ces: 0,
        storms: 0,
        sdc_hits: 0,
        ras: RasReport::default(),
        adddc_engaged: false,
    };
    recent_ces.clear();
    let mut suppressed_until: Option<SimTime> = None;
    let mut ras = ras_policy.map(RasState::new);
    let mut adddc = ras_policy.and_then(|p| p.adddc).map(AdddcState::new);
    fault_active.clear();
    fault_active.resize(plan.faults.len(), true);
    let mut last_time = SimTime::ZERO;

    for (i, &(t, idx)) in hits.iter().enumerate() {
        if !fault_active[idx] {
            continue;
        }
        *transitions += 1;
        let fault = &plan.faults[idx];
        let transfer = fault.sample_transfer(t, plan.spec.width, rng);
        let lockstep = adddc.as_ref().is_some_and(AdddcState::is_active);
        let outcome_decode = if lockstep {
            memo.decode_lockstep(&transfer, plan.spec.width)
        } else {
            memo.decode(platform, &transfer, plan.spec.width)
        };
        match outcome_decode {
            DecodeOutcome::Clean => {}
            DecodeOutcome::Corrected => {
                while recent_ces.front().is_some_and(|&t0| {
                    t.checked_duration_since(t0)
                        .is_some_and(|d| d.as_secs() > 60)
                }) {
                    recent_ces.pop_front();
                }
                recent_ces.push_back(t);

                let suppressed = suppressed_until.is_some_and(|u| t < u);
                if suppressed {
                    outcome.suppressed_ces += 1;
                    continue;
                }
                if recent_ces.len() as u32 >= storm.threshold {
                    outcome.storms += 1;
                    suppressed_until = Some(t + storm.suppression);
                    buf.push(
                        KIND_STORM,
                        (t - last_time).as_secs() as u32,
                        recent_ces.len() as u64,
                        None,
                    );
                    last_time = t;
                    recent_ces.clear();
                    continue;
                }
                outcome.logged_ces += 1;
                let addr = fault.sample_addr(&plan.spec.geometry, rng);
                buf.push(
                    KIND_CE,
                    (t - last_time).as_secs() as u32,
                    pack_addr(&addr),
                    Some(&transfer),
                );
                last_time = t;
                if let Some(ras) = ras.as_mut() {
                    let action = ras.observe_ce(&addr);
                    if ras.fault_is_mitigated(fault, action, &addr) {
                        fault_active[idx] = false;
                    }
                }
                if let Some(adddc) = adddc.as_mut() {
                    if adddc.observe_devices(transfer.device_mask(plan.spec.width)) {
                        outcome.adddc_engaged = true;
                    }
                }
            }
            DecodeOutcome::Ue => {
                outcome.first_ue = Some(t);
                let addr = fault.sample_addr(&plan.spec.geometry, rng);
                buf.push(
                    KIND_UE,
                    (t - last_time).as_secs() as u32,
                    pack_addr(&addr),
                    Some(&transfer),
                );
                // DIMM out of service: its remaining scheduled transitions
                // are dropped without sampling anything.
                *skipped_post_ue += (hits.len() - i - 1) as u64;
                break;
            }
            DecodeOutcome::Sdc => {
                outcome.sdc_hits += 1;
            }
        }
    }
    if let Some(ras) = ras {
        outcome.ras = ras.report();
    }
    outcome
}

/// Builds the shard's calendar-queue index: every event becomes an
/// `(absolute seconds, stream, position)` entry bucketed by hour, and
/// each bucket is `sort_unstable`d by the full tuple — `position` is
/// unique, so the key is a strict total order and the unstable sort is
/// deterministic. Concatenated buckets yield the shard's merge order
/// `(time, dimm_id, within-DIMM seq)`.
///
/// Returns the sorted index and the largest bucket population (queue
/// depth telemetry).
fn build_index(streams: &StreamTable, buf: &EventBuf, horizon_secs: u64) -> (Vec<(u32, u32, u32)>, usize) {
    let nb = (horizon_secs / BUCKET_SECS) as usize + 2;
    let mut counts = vec![0u32; nb];
    for si in 0..streams.dimm.len() {
        let start = streams.start[si] as usize;
        let len = streams.len[si] as usize;
        let mut t = 0u64;
        for pos in start..start + len {
            t += u64::from(buf.dt[pos]);
            counts[(t / BUCKET_SECS) as usize] += 1;
        }
    }
    let mut offsets = vec![0u32; nb + 1];
    for b in 0..nb {
        offsets[b + 1] = offsets[b] + counts[b];
    }
    let total = offsets[nb] as usize;
    let mut index = vec![(0u32, 0u32, 0u32); total];
    let mut cursor: Vec<u32> = offsets[..nb].to_vec();
    for si in 0..streams.dimm.len() {
        let start = streams.start[si] as usize;
        let len = streams.len[si] as usize;
        let mut t = 0u64;
        for pos in start..start + len {
            t += u64::from(buf.dt[pos]);
            let b = (t / BUCKET_SECS) as usize;
            index[cursor[b] as usize] = (t as u32, si as u32, pos as u32);
            cursor[b] += 1;
        }
    }
    let mut max_bucket = 0usize;
    for b in 0..nb {
        let (lo, hi) = (offsets[b] as usize, offsets[b + 1] as usize);
        max_bucket = max_bucket.max(hi - lo);
        index[lo..hi].sort_unstable();
    }
    (index, max_bucket)
}

/// Simulates one shard's DIMMs in plan order into SoA storage and builds
/// its sorted transition index.
fn simulate_event_shard(
    shard: usize,
    slice: &[PlannedDimm],
    cfg: &FleetConfig,
    storm: StormPolicy,
    memo: &mut BeatMemoEcc,
    scratch: &mut DimmScratch,
) -> EventShard {
    let started = std::time::Instant::now();
    let mut buf = EventBuf::default();
    let mut streams = StreamTable::default();
    let mut truths = Vec::with_capacity(slice.len());
    let mut quiet = 0u64;
    let mut transitions = 0u64;
    let mut skipped_post_ue = 0u64;
    for (platform, plan, seed) in slice {
        let mut rng = StdRng::seed_from_u64(*seed);
        let start = buf.len() as u32;
        let outcome = simulate_dimm_events(
            plan,
            *platform,
            cfg.horizon,
            storm,
            cfg.ras,
            memo,
            scratch,
            &mut buf,
            &mut transitions,
            &mut skipped_post_ue,
            &mut rng,
        );
        let len = buf.len() as u32 - start;
        if len > 0 {
            streams.dimm.push(plan.id);
            streams.start.push(start);
            streams.len.push(len);
        } else {
            // Quiet DIMMs never enter the calendar queue or the merge.
            quiet += 1;
        }
        truths.push(DimmTruth {
            id: plan.id,
            platform: *platform,
            spec: plan.spec,
            category: plan.category,
            fault_modes: plan.faults.iter().map(|f| f.mode).collect(),
            outcome,
        });
    }
    let (index, max_bucket) = build_index(&streams, &buf, cfg.horizon.as_secs());
    let wall_secs = started.elapsed().as_secs_f64();

    let shard_label = shard.to_string();
    mfp_obs::counter("sim_event_shard_events", &[("shard", &shard_label)])
        .add(index.len() as u64);
    mfp_obs::counter("sim_event_transitions", &[]).add(transitions);
    mfp_obs::counter("sim_event_skipped_post_ue", &[]).add(skipped_post_ue);
    mfp_obs::counter("sim_event_quiet_dimms", &[]).add(quiet);
    mfp_obs::gauge("sim_event_bucket_max", &[]).set(max_bucket as f64);
    mfp_obs::latency("sim_event_shard_seconds", &[]).record(wall_secs);
    let stats = ShardStats {
        shard,
        dimms: slice.len(),
        events: index.len() as u64,
        wall_secs,
    };
    EventShard {
        shard,
        buf,
        streams,
        index,
        truths,
        stats,
    }
}

/// Head of one shard's stream in the cross-shard merge heap; reversed
/// `Ord` pops the minimum `(time, dimm, shard)` first, exactly like the
/// sharded engine's merge.
struct EvHead {
    time: SimTime,
    dimm: DimmId,
    shard: usize,
}

impl EvHead {
    fn key(&self) -> (SimTime, DimmId, usize) {
        (self.time, self.dimm, self.shard)
    }
}

impl PartialEq for EvHead {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for EvHead {}

impl PartialOrd for EvHead {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for EvHead {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other.key().cmp(&self.key())
    }
}

/// A planned fleet ready for event-driven execution — the event engine's
/// counterpart of [`ShardedFleet`](crate::sharded::ShardedFleet), sharing
/// its planning phase, [`ShardConfig`] knobs and [`ShardedOutcome`]
/// result shape so the two engines are drop-in interchangeable.
#[derive(Debug, Clone)]
pub struct EventFleet {
    cfg: FleetConfig,
    plans: Vec<PlannedDimm>,
}

impl EventFleet {
    /// Runs the (sequential, deterministic) planning phase — identical to
    /// the tick engines'.
    pub fn plan(cfg: &FleetConfig) -> Self {
        let plans = plan_fleet(cfg);
        debug_assert!(
            plans.windows(2).all(|w| w[0].1.id < w[1].1.id),
            "plan order must ascend with DimmId (merge key relies on it)"
        );
        EventFleet {
            cfg: cfg.clone(),
            plans,
        }
    }

    /// Number of DIMMs the fleet will simulate.
    pub fn dimm_count(&self) -> usize {
        self.plans.len()
    }

    /// The fleet's DIMM catalog, known before any event is simulated.
    pub fn catalog(&self) -> impl Iterator<Item = (DimmId, Platform, DimmSpec)> + '_ {
        self.plans.iter().map(|(p, plan, _)| (plan.id, *p, plan.spec))
    }

    /// Simulates the fleet event-driven on `scfg.workers` threads across
    /// `scfg.shards` partitions, handing the merged, time-ordered event
    /// stream to `sink` one event at a time.
    ///
    /// The stream is bit-identical to
    /// [`simulate_fleet`](crate::fleet::simulate_fleet) and to
    /// [`ShardedFleet::run_stream`](crate::sharded::ShardedFleet::run_stream)
    /// for the same `FleetConfig`, whatever the shard and worker counts.
    pub fn run_stream<F: FnMut(MemEvent)>(&self, scfg: &ShardConfig, mut sink: F) -> ShardedOutcome {
        let span = mfp_obs::latency("sim_event_seconds", &[]).time();
        assert!(
            self.cfg.horizon.as_secs() <= u64::from(u32::MAX),
            "event engine delta timestamps cap the horizon at u32::MAX seconds (~136 years)"
        );
        let shards = scfg.shards.max(1);
        let workers = scfg.workers.max(1);
        let capacity = scfg.channel_capacity.max(1);
        let storm = StormPolicy {
            threshold: self.cfg.storm_threshold,
            suppression: self.cfg.storm_suppression,
        };

        let chunk = self.plans.len().div_ceil(shards).max(1);
        let slices: Vec<&[PlannedDimm]> = self.plans.chunks(chunk).collect();
        let shard_count = slices.len();

        let next = AtomicUsize::new(0);
        let queued = AtomicUsize::new(0);
        let depth_gauge = mfp_obs::gauge("sim_event_queue_depth", &[]);
        let (tx, rx) = sync_channel::<EventShard>(capacity);

        let mut outputs: Vec<EventShard> = Vec::with_capacity(shard_count);
        let mut max_queue_depth = 0usize;
        std::thread::scope(|s| {
            for _ in 0..workers.min(shard_count.max(1)) {
                let tx = tx.clone();
                let next = &next;
                let queued = &queued;
                let depth_gauge = &depth_gauge;
                let slices = &slices;
                let cfg = &self.cfg;
                s.spawn(move || {
                    // One beat-level decode memo and one scratch arena per
                    // worker, reused across all its shards (decode is pure,
                    // so sharing never leaks into outcomes).
                    let mut memo = BeatMemoEcc::new();
                    let mut scratch = DimmScratch::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= slices.len() {
                            break;
                        }
                        let out = simulate_event_shard(
                            i,
                            slices[i],
                            cfg,
                            storm,
                            &mut memo,
                            &mut scratch,
                        );
                        depth_gauge.set(queued.fetch_add(1, Ordering::Relaxed) as f64 + 1.0);
                        if tx.send(out).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            while let Ok(out) = rx.recv() {
                let depth = queued.fetch_sub(1, Ordering::Relaxed);
                max_queue_depth = max_queue_depth.max(depth);
                depth_gauge.set(depth.saturating_sub(1) as f64);
                outputs.push(out);
            }
        });
        assert_eq!(
            outputs.len(),
            shard_count,
            "a simulation worker panicked before delivering its shard"
        );

        outputs.sort_by_key(|o| o.shard);
        let mut dimms = Vec::with_capacity(self.plans.len());
        let mut per_shard = Vec::with_capacity(shard_count);
        for out in &mut outputs {
            dimms.append(&mut out.truths);
            per_shard.push(out.stats);
        }

        // K-way merge across shard indexes on (time, dimm): pop the
        // minimum head, reconstruct its MemEvent from SoA storage, refill
        // from the same shard.
        let mut heap: BinaryHeap<EvHead> = BinaryHeap::with_capacity(shard_count);
        let mut cursors = vec![0usize; outputs.len()];
        for (k, out) in outputs.iter().enumerate() {
            if let Some(&(secs, stream, _)) = out.index.first() {
                heap.push(EvHead {
                    time: SimTime::from_secs(u64::from(secs)),
                    dimm: out.streams.dimm[stream as usize],
                    shard: k,
                });
            }
        }
        mfp_obs::gauge("sim_event_merge_heads", &[]).set(heap.len() as f64);
        let mut merged_events = 0u64;
        while let Some(head) = heap.pop() {
            let out = &outputs[head.shard];
            let cur = cursors[head.shard];
            let (_, _, pos) = out.index[cur];
            sink(out.buf.event_at(pos as usize, head.time, head.dimm));
            merged_events += 1;
            cursors[head.shard] = cur + 1;
            if let Some(&(secs, stream, _)) = out.index.get(cur + 1) {
                heap.push(EvHead {
                    time: SimTime::from_secs(u64::from(secs)),
                    dimm: out.streams.dimm[stream as usize],
                    shard: head.shard,
                });
            }
        }

        mfp_obs::counter("sim_event_runs", &[]).incr();
        mfp_obs::counter("sim_event_events_merged", &[]).add(merged_events);
        span.stop();
        ShardedOutcome {
            dimms,
            stats: ShardedStats {
                shards: shard_count,
                workers,
                merged_events,
                max_queue_depth,
                per_shard,
            },
        }
    }
}

/// Runs an event-driven simulation and materializes a [`FleetResult`],
/// the drop-in equivalent of
/// [`simulate_fleet`](crate::fleet::simulate_fleet) /
/// [`simulate_fleet_sharded`](crate::sharded::simulate_fleet_sharded).
pub fn simulate_fleet_events(cfg: &FleetConfig, scfg: &ShardConfig) -> FleetResult {
    let fleet = EventFleet::plan(cfg);
    let mut log = BmcLog::new();
    let outcome = fleet.run_stream(scfg, |e| log.push(e));
    log.sort(); // no-op: the merged stream arrives time-ordered
    FleetResult {
        log,
        dimms: outcome.dimms,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DimmCategory;
    use crate::dimm::simulate_dimm_ras;
    use crate::fleet::simulate_fleet_with_workers;
    use crate::gen::{sample_benign_fault, sample_spec};
    use mfp_ecc::platforms::PlatformEcc;

    fn small_cfg(seed: u64) -> FleetConfig {
        let mut cfg = FleetConfig::smoke(seed);
        cfg.horizon = SimDuration::days(60);
        cfg
    }

    #[test]
    fn event_engine_is_bit_identical_across_shard_and_worker_counts() {
        let cfg = small_cfg(42);
        let oracle = simulate_fleet_with_workers(&cfg, 1);
        for shards in [1usize, 2, 4, 8] {
            for workers in [1usize, 2, 4] {
                let got = simulate_fleet_events(&cfg, &ShardConfig::new(shards, workers));
                assert_eq!(
                    got.log.events(),
                    oracle.log.events(),
                    "event stream must match the tick oracle (shards={shards} workers={workers})"
                );
                assert_eq!(
                    got.dimms, oracle.dimms,
                    "truths must match the tick oracle (shards={shards} workers={workers})"
                );
            }
        }
    }

    #[test]
    fn event_engine_matches_oracle_under_ras_policy() {
        let mut cfg = small_cfg(9);
        cfg.ras = Some(RasPolicy::default());
        let oracle = simulate_fleet_with_workers(&cfg, 1);
        let got = simulate_fleet_events(&cfg, &ShardConfig::new(4, 2));
        assert_eq!(got.log.events(), oracle.log.events());
        assert_eq!(got.dimms, oracle.dimms);
    }

    #[test]
    fn zero_dimm_fleet_is_fine_on_both_engines() {
        let mut cfg = small_cfg(3);
        for pc in &mut cfg.platforms {
            pc.dimms_with_ces = 0;
            pc.sudden_only_dimms = 0;
        }
        let oracle = simulate_fleet_with_workers(&cfg, 1);
        assert!(oracle.log.is_empty());
        assert!(oracle.dimms.is_empty());
        let got = simulate_fleet_events(&cfg, &ShardConfig::new(4, 2));
        assert!(got.log.is_empty());
        assert!(got.dimms.is_empty());
        let fleet = EventFleet::plan(&cfg);
        assert_eq!(fleet.dimm_count(), 0);
        let outcome = fleet.run_stream(&ShardConfig::new(4, 2), |_| {
            panic!("no events expected")
        });
        assert_eq!(outcome.stats.merged_events, 0);
    }

    #[test]
    fn more_shards_than_dimms_is_fine() {
        let mut cfg = small_cfg(7);
        for pc in &mut cfg.platforms {
            pc.dimms_with_ces = 3;
            pc.sudden_only_dimms = 1;
        }
        let oracle = simulate_fleet_with_workers(&cfg, 1);
        let got = simulate_fleet_events(&cfg, &ShardConfig::new(64, 3));
        assert_eq!(got.log.events(), oracle.log.events());
        assert_eq!(got.dimms.len(), 12);
    }

    #[test]
    fn degenerate_knobs_are_clamped() {
        let cfg = small_cfg(5);
        let oracle = simulate_fleet_with_workers(&cfg, 1);
        let got = simulate_fleet_events(
            &cfg,
            &ShardConfig {
                shards: 0,
                workers: 0,
                channel_capacity: 0,
            },
        );
        assert_eq!(got.log.events(), oracle.log.events());
    }

    #[test]
    fn catalog_and_stats_partition_the_run() {
        let cfg = small_cfg(11);
        let fleet = EventFleet::plan(&cfg);
        let catalog: Vec<_> = fleet.catalog().collect();
        assert_eq!(catalog.len(), fleet.dimm_count());
        let mut n = 0u64;
        let mut last: Option<(SimTime, DimmId)> = None;
        let outcome = fleet.run_stream(&ShardConfig::new(4, 2), |e| {
            if let Some((t, d)) = last {
                assert!((t, d) <= (e.time(), e.dimm()), "merge key must be non-decreasing");
            }
            last = Some((e.time(), e.dimm()));
            n += 1;
        });
        assert_eq!(outcome.stats.merged_events, n);
        assert_eq!(outcome.dimms.len(), catalog.len());
        assert_eq!(
            outcome.stats.per_shard.iter().map(|s| s.events).sum::<u64>(),
            n
        );
        assert_eq!(
            outcome.stats.per_shard.iter().map(|s| s.dimms).sum::<usize>(),
            fleet.dimm_count()
        );
    }

    #[test]
    fn transition_exactly_on_the_horizon_is_excluded_by_both_engines() {
        // A saturating fault (dt.max(1.0) == 1s steps) with onset two
        // seconds before the horizon: the oracle schedules hits at
        // horizon-1s and would next land exactly on the horizon boundary,
        // which `t >= ZERO + horizon` excludes. The event engine must
        // honor the same half-open interval.
        let cfg = FleetConfig::calibrated(100.0, 3);
        let pc = cfg.platform(Platform::IntelPurley).unwrap().clone();
        let horizon = SimDuration::days(2);
        let mut rng = StdRng::seed_from_u64(4242);
        let mut spec = sample_spec(&pc, &mut rng);
        spec.width = mfp_dram::geometry::DataWidth::X4;
        let mut fault = sample_benign_fault(&pc, &spec, horizon, &mut rng);
        fault.hit_rate_per_day = 1e12; // every draw collapses to the 1s floor
        fault.onset = SimTime::ZERO + horizon - SimDuration::secs(2);
        fault.dq_mask = 0b1;
        let onset = fault.onset;
        let plan = DimmPlan {
            id: DimmId::new(77, 0),
            spec,
            category: DimmCategory::Benign,
            faults: vec![fault],
        };

        let ecc = PlatformEcc::for_platform(Platform::IntelPurley);
        let mut log = BmcLog::new();
        let mut rng_a = StdRng::seed_from_u64(99);
        let oracle = simulate_dimm_ras(
            &plan,
            &ecc,
            horizon,
            StormPolicy::default(),
            None,
            &mut log,
            &mut rng_a,
        );

        let mut memo = BeatMemoEcc::new();
        let mut scratch = DimmScratch::default();
        let mut buf = EventBuf::default();
        let (mut transitions, mut skipped) = (0u64, 0u64);
        let mut rng_b = StdRng::seed_from_u64(99);
        let got = simulate_dimm_events(
            &plan,
            Platform::IntelPurley,
            horizon,
            StormPolicy::default(),
            None,
            &mut memo,
            &mut scratch,
            &mut buf,
            &mut transitions,
            &mut skipped,
            &mut rng_b,
        );
        assert_eq!(got, oracle);

        // Reconstruct the SoA events and compare to the oracle log.
        let mut t = SimTime::ZERO;
        let events: Vec<MemEvent> = (0..buf.len())
            .map(|pos| {
                t = t + SimDuration::secs(u64::from(buf.dt[pos]));
                buf.event_at(pos, t, plan.id)
            })
            .collect();
        assert_eq!(events, log.events());
        assert!(!events.is_empty(), "the pre-horizon second must produce events");
        let end = SimTime::ZERO + horizon;
        assert!(
            events.iter().all(|e| e.time() < end),
            "no event may land on or past the horizon boundary"
        );
        // The fault saturates the safety valve; with onset at horizon-2s
        // only the in-horizon seconds may surface.
        assert!(events.iter().all(|e| e.time() >= onset));
    }

    #[test]
    fn event_run_reports_telemetry() {
        let cfg = small_cfg(13);
        let _ = simulate_fleet_events(&cfg, &ShardConfig::new(2, 2));
        let snap = mfp_obs::global().snapshot();
        assert!(snap.counter("sim_event_runs") >= 1);
        assert!(snap.counter("sim_event_events_merged") > 0);
        assert!(snap.counter("sim_event_transitions") > 0);
        assert!(snap.counter("sim_event_quiet_dimms") > 0);
        assert!(
            snap.counter_labeled("sim_event_shard_events", &[("shard", "0")])
                .is_some()
        );
    }

    #[test]
    fn addr_packing_roundtrips() {
        for addr in [
            CellAddr::new(0, 0, 0, 0),
            CellAddr::new(3, 15, 131_071, 1023),
            CellAddr::new(255, 255, u32::MAX, u16::MAX),
        ] {
            assert_eq!(unpack_addr(pack_addr(&addr)), addr);
        }
    }
}
