//! Fleet generation: sampling DIMM specifications and fault instances
//! consistent with a platform's calibrated configuration.

use crate::config::{DimmCategory, FaultModeMix, PlatformConfig};
use crate::fault::{Fault, FaultMode, SeverityProfile, Spread};
use mfp_dram::address::{DimmId, Region};
use mfp_dram::geometry::{DataWidth, DeviceGeometry, BURST_BEATS};
use mfp_dram::spec::{DieProcess, DimmSpec, Frequency, Manufacturer};
use mfp_dram::time::{SimDuration, SimTime};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// The generated plan for one DIMM: its static spec and the faults that
/// will manifest during the simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimmPlan {
    /// The DIMM's identity.
    pub id: DimmId,
    /// Static specification.
    pub spec: DimmSpec,
    /// Generative category (ground truth; the logs never reveal it).
    pub category: DimmCategory,
    /// Fault instances.
    pub faults: Vec<Fault>,
}

/// Samples the static spec of a DIMM.
pub fn sample_spec<R: Rng>(cfg: &PlatformConfig, rng: &mut R) -> DimmSpec {
    let manufacturer = *weighted_choice(
        &Manufacturer::ALL,
        &[0.30, 0.25, 0.20, 0.15, 0.10],
        rng,
    );
    let width = if rng.random::<f64>() < cfg.x8_fraction {
        DataWidth::X8
    } else {
        DataWidth::X4
    };
    let frequency = *weighted_choice(
        &Frequency::ALL,
        &[0.05, 0.15, 0.35, 0.30, 0.15],
        rng,
    );
    let process = *weighted_choice(&DieProcess::ALL, &[0.25, 0.45, 0.30], rng);
    let capacity = *weighted_choice(&[16u16, 32, 64], &[0.30, 0.50, 0.20], rng);
    DimmSpec::new(manufacturer, width, frequency, process, capacity)
}

/// Generates the full plan list for one platform's sub-fleet.
///
/// Servers are numbered from `base_server`; each plan gets its own server
/// (only DIMMs with faults are simulated — the healthy rest of the fleet
/// never produces events).
pub fn generate_plans<R: Rng>(
    cfg: &PlatformConfig,
    horizon: SimDuration,
    base_server: u32,
    rng: &mut R,
) -> Vec<DimmPlan> {
    let mut plans = Vec::with_capacity(cfg.dimms_with_ces + cfg.sudden_only_dimms);
    for i in 0..cfg.dimms_with_ces {
        let id = DimmId::new(base_server + i as u32, rng.random_range(0..16));
        let spec = sample_spec(cfg, rng);
        let u: f64 = rng.random();
        let category = if u < cfg.categories.benign {
            DimmCategory::Benign
        } else {
            DimmCategory::Degrading
        };
        let mut faults = Vec::new();
        match category {
            DimmCategory::Benign => {
                faults.push(sample_benign_fault(cfg, &spec, horizon, rng));
            }
            DimmCategory::Degrading => {
                faults.push(sample_degrading_fault(cfg, &spec, horizon, rng));
            }
            DimmCategory::Sudden => unreachable!("sudden DIMMs are generated separately"),
        }
        // Extra benign faults (Poisson). Independent faults live on
        // distinct devices — co-locating them would fabricate accidental
        // multi-DQ footprints no real fault produced.
        let extra = sample_poisson(cfg.extra_fault_lambda, rng);
        for _ in 0..extra {
            let mut f = sample_benign_fault(cfg, &spec, horizon, rng);
            let devices = spec.width.devices_per_rank();
            while faults.iter().any(|g| g.device == f.device) {
                f.device = (f.device + 1 + rng.random_range(0..devices - 1)) % devices;
            }
            faults.push(f);
        }
        plans.push(DimmPlan {
            id,
            spec,
            category,
            faults,
        });
    }
    let sudden_base = base_server + cfg.dimms_with_ces as u32;
    for i in 0..cfg.sudden_only_dimms {
        let id = DimmId::new(sudden_base + i as u32, rng.random_range(0..16));
        let spec = sample_spec(cfg, rng);
        let fault = sample_sudden_fault(&spec, horizon, rng);
        plans.push(DimmPlan {
            id,
            spec,
            category: DimmCategory::Sudden,
            faults: vec![fault],
        });
    }
    plans
}

/// Samples a spatial fault mode from a mix.
fn sample_mode<R: Rng>(mix: &FaultModeMix, rng: &mut R) -> FaultMode {
    let weights = [mix.cell, mix.row, mix.column, mix.bank, mix.device];
    let modes = [
        FaultMode::Cell,
        FaultMode::Row,
        FaultMode::Column,
        FaultMode::Bank,
        FaultMode::Device,
    ];
    *weighted_choice(&modes, &weights, rng)
}

/// Samples the spatial footprint for a mode.
fn sample_region<R: Rng>(
    mode: FaultMode,
    spec: &DimmSpec,
    rng: &mut R,
) -> Region {
    let geom: &DeviceGeometry = &spec.geometry;
    let rank = rng.random_range(0..spec.ranks);
    let bank = rng.random_range(0..geom.banks() as u8);
    match mode {
        FaultMode::Cell => Region::Cell {
            addr: mfp_dram::address::CellAddr::new(
                rank,
                bank,
                rng.random_range(0..geom.rows()),
                rng.random_range(0..geom.cols() as u16),
            ),
        },
        FaultMode::Row => Region::Row {
            rank,
            bank,
            row: rng.random_range(0..geom.rows()),
        },
        FaultMode::Column => Region::Column {
            rank,
            bank,
            col: rng.random_range(0..geom.cols() as u16),
        },
        FaultMode::Bank => Region::Bank { rank, bank },
        FaultMode::Device | FaultMode::MultiDevice => Region::Rank { rank },
    }
}

/// Bit-pattern mask pair `(dq_mask, beat_mask)`.
struct Signature {
    dq_mask: u8,
    beat_mask: u8,
}

/// Samples the risky degrading signature for a platform.
fn sample_degrading_signature<R: Rng>(
    cfg: &PlatformConfig,
    mode: FaultMode,
    width: DataWidth,
    rng: &mut R,
) -> Signature {
    let w = width.dq_per_device();
    let full: u8 = if w == 4 { 0xF } else { 0xFF };
    if mode == FaultMode::Device || rng.random::<f64>() < cfg.patterns.device_wide_prob {
        // Device-wide I/O degradation: all DQs, many beats (the Whitley
        // 4-DQ / 5-beat signature).
        let n_beats = rng.random_range(5..=7u32);
        Signature {
            dq_mask: full,
            beat_mask: random_beat_mask(n_beats, rng),
        }
    } else if rng.random::<f64>() < cfg.patterns.stride4_prob {
        // Column-select defect: beats {b, b+4} (the Purley 2-DQ / 2-beat /
        // interval-4 signature).
        let odd = rng.random::<f64>() < cfg.patterns.stride4_odd_prob;
        let b = if odd {
            1 + 2 * rng.random_range(0..2u8) // 1 or 3
        } else {
            2 * rng.random_range(0..2u8) // 0 or 2
        };
        let dq0 = rng.random_range(0..w - 1);
        Signature {
            dq_mask: (0b11 << dq0) & full,
            beat_mask: (1 << b) | (1 << (b + 4)),
        }
    } else {
        // Generic multi-bit degradation.
        let n_beats = rng.random_range(1..=3u32);
        let dq0 = rng.random_range(0..w);
        let dq_mask = if rng.random::<f64>() < 0.5 && dq0 + 1 < w {
            0b11 << dq0
        } else {
            1 << dq0
        };
        Signature {
            dq_mask,
            beat_mask: random_beat_mask(n_beats, rng),
        }
    }
}

/// Samples a benign signature: single-bit footprints, or "mimics" of the
/// risky signature constrained to remain correctable.
fn sample_benign_signature<R: Rng>(
    cfg: &PlatformConfig,
    width: DataWidth,
    rng: &mut R,
) -> Signature {
    let w = width.dq_per_device();
    let full: u8 = if w == 4 { 0xF } else { 0xFF };
    let purley = cfg.platform == mfp_dram::geometry::Platform::IntelPurley;
    if width == DataWidth::X4 && rng.random::<f64>() < cfg.patterns.mimic_prob {
        if rng.random::<f64>() < cfg.patterns.device_wide_prob {
            // Device-wide mimic. On Purley, restrict to strong (even) beats
            // so it stays correctable (survivorship: modules whose wide
            // patterns hit weak beats have already failed).
            let beat_mask = if purley {
                0b0101_0100
            } else {
                random_beat_mask(5, rng)
            };
            Signature {
                dq_mask: full,
                beat_mask,
            }
        } else {
            // Stride-4 mimic on strong beats: same counts and intervals the
            // predictor sees, but never uncorrectable on Purley.
            let b = 2 * rng.random_range(0..2u8);
            let dq0 = rng.random_range(0..w - 1);
            Signature {
                dq_mask: (0b11 << dq0) & full,
                beat_mask: (1 << b) | (1 << (b + 4)),
            }
        }
    } else {
        // Ordinary benign fault: a single DQ lane, one or two beats — a
        // single bit per beat is always correctable everywhere.
        let n_beats = rng.random_range(1..=2u32);
        Signature {
            dq_mask: 1 << rng.random_range(0..w),
            beat_mask: random_beat_mask(n_beats, rng),
        }
    }
}

/// Samples a benign (stable) fault.
pub fn sample_benign_fault<R: Rng>(
    cfg: &PlatformConfig,
    spec: &DimmSpec,
    horizon: SimDuration,
    rng: &mut R,
) -> Fault {
    let mode = sample_mode(&cfg.benign_modes, rng);
    let region = sample_region(mode, spec, rng);
    let sig = sample_benign_signature(cfg, spec.width, rng);
    let device = rng.random_range(0..spec.width.devices_per_rank());
    let onset = SimTime::ZERO + SimDuration::secs(rng.random_range(0..horizon.as_secs()));
    // Multi-DQ "mimic" signatures stay at low severity: they imitate the
    // risky pattern's geometry but not its intensity growth.
    let severity = if sig.dq_mask.count_ones() >= 2 {
        0.015 + 0.035 * rng.random::<f64>()
    } else {
        0.02 + 0.08 * rng.random::<f64>()
    };
    Fault {
        mode,
        device,
        extra_devices: vec![],
        region,
        dq_mask: sig.dq_mask,
        beat_mask: sig.beat_mask,
        onset,
        profile: SeverityProfile::stable(severity),
        // Benign faults sit in colder regions on average (survivorship of
        // hot faulty pages to the page-offlining policy).
        hit_rate_per_day: 0.6 * jittered_hit_rate(mode, rng),
        spread: None,
    }
}

/// Samples a degrading fault (the predictable-UE mechanism).
pub fn sample_degrading_fault<R: Rng>(
    cfg: &PlatformConfig,
    spec: &DimmSpec,
    horizon: SimDuration,
    rng: &mut R,
) -> Fault {
    let d = &cfg.degradation;
    let mode = sample_mode(&cfg.degrading_modes, rng);
    let region = sample_region(mode, spec, rng);
    let sig = sample_degrading_signature(cfg, mode, spec.width, rng);
    let device = rng.random_range(0..spec.width.devices_per_rank());
    // Onset early enough that degradation has room to play out.
    let onset_max = (horizon.as_secs() as f64 * 0.85) as u64;
    let onset = SimTime::ZERO + SimDuration::secs(rng.random_range(0..onset_max.max(1)));

    let tau = d.growth_tau_days * (0.7 + 0.7 * rng.random::<f64>());
    let mut profile = SeverityProfile::degrading(d.base_severity, tau, d.max_severity);
    if rng.random::<f64>() < d.stall_prob {
        profile.stall_at = Some(d.stall_severity * (0.7 + 0.6 * rng.random::<f64>()));
        profile.stall_decay_tau_days =
            Some(d.stall_decay_tau_days * (0.7 + 0.6 * rng.random::<f64>()));
    }

    let spread = if rng.random::<f64>() < d.spread_prob {
        profile
            .days_to_reach(d.spread_severity)
            .map(|days| {
                let onset_spread = onset + SimDuration::secs((days * 86_400.0) as u64);
                let devices = spec.width.devices_per_rank();
                let mut other = rng.random_range(0..devices);
                if other == device {
                    other = (other + 1) % devices;
                }
                Spread {
                    device: other,
                    onset: onset_spread,
                    profile: SeverityProfile::degrading(
                        d.base_severity,
                        (tau / 2.0).max(1.0),
                        d.max_severity,
                    ),
                }
            })
    } else {
        None
    };

    Fault {
        mode,
        device,
        extra_devices: vec![],
        region,
        dq_mask: sig.dq_mask,
        beat_mask: sig.beat_mask,
        onset,
        profile,
        hit_rate_per_day: jittered_hit_rate(mode, rng),
        spread,
    }
}

/// Samples an instant catastrophic fault: a multi-device failure whose very
/// first manifestation exceeds every platform's correction capability.
pub fn sample_sudden_fault<R: Rng>(
    spec: &DimmSpec,
    horizon: SimDuration,
    rng: &mut R,
) -> Fault {
    let devices = spec.width.devices_per_rank();
    let d1 = rng.random_range(0..devices);
    let mut d2 = rng.random_range(0..devices);
    if d2 == d1 {
        d2 = (d2 + 1) % devices;
    }
    let w = spec.width.dq_per_device();
    let full: u8 = if w == 4 { 0xF } else { 0xFF };
    let onset = SimTime::ZERO + SimDuration::secs(rng.random_range(0..horizon.as_secs()));
    Fault {
        mode: FaultMode::MultiDevice,
        device: d1,
        extra_devices: vec![d2],
        region: Region::Rank {
            rank: rng.random_range(0..spec.ranks),
        },
        dq_mask: full,
        beat_mask: 0xFF,
        onset,
        profile: SeverityProfile::stable(0.7),
        hit_rate_per_day: jittered_hit_rate(FaultMode::MultiDevice, rng),
        spread: None,
    }
}

/// Mode hit rate with a per-DIMM workload jitter (log-normal-ish).
fn jittered_hit_rate<R: Rng>(mode: FaultMode, rng: &mut R) -> f64 {
    let z = gaussian(rng);
    mode.base_hit_rate_per_day() * (0.5 * z).exp().clamp(0.3, 3.0)
}

/// Standard normal via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Poisson sample via inversion (small lambda).
fn sample_poisson<R: Rng>(lambda: f64, rng: &mut R) -> u32 {
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l || k > 20 {
            return k;
        }
        k += 1;
    }
}

/// A random beat mask with `n` distinct beats set.
fn random_beat_mask<R: Rng>(n: u32, rng: &mut R) -> u8 {
    let n = n.min(BURST_BEATS as u32);
    let mut mask = 0u8;
    while mask.count_ones() < n {
        mask |= 1 << rng.random_range(0..BURST_BEATS);
    }
    mask
}

/// Weighted choice over a slice (weights need not sum to 1).
fn weighted_choice<'a, T, R: Rng + ?Sized>(items: &'a [T], weights: &[f64], rng: &mut R) -> &'a T {
    assert_eq!(items.len(), weights.len());
    let total: f64 = weights.iter().sum();
    let mut u = rng.random::<f64>() * total;
    for (item, &w) in items.iter().zip(weights) {
        if u < w {
            return item;
        }
        u -= w;
    }
    items.last().expect("weighted_choice on empty slice")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;
    use mfp_dram::geometry::Platform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> PlatformConfig {
        FleetConfig::calibrated(100.0, 3)
            .platform(Platform::IntelPurley)
            .unwrap()
            .clone()
    }

    #[test]
    fn plans_cover_population() {
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(1);
        let plans = generate_plans(&c, SimDuration::days(120), 0, &mut rng);
        assert_eq!(plans.len(), c.dimms_with_ces + c.sudden_only_dimms);
        let sudden = plans
            .iter()
            .filter(|p| p.category == DimmCategory::Sudden)
            .count();
        assert_eq!(sudden, c.sudden_only_dimms);
        // Every plan has at least one fault.
        assert!(plans.iter().all(|p| !p.faults.is_empty()));
    }

    #[test]
    fn category_fractions_approx_config() {
        let mut c = cfg();
        c.dimms_with_ces = 4000;
        c.sudden_only_dimms = 0;
        let mut rng = StdRng::seed_from_u64(2);
        let plans = generate_plans(&c, SimDuration::days(120), 0, &mut rng);
        let degrading = plans
            .iter()
            .filter(|p| p.category == DimmCategory::Degrading)
            .count() as f64
            / plans.len() as f64;
        assert!(
            (degrading - c.categories.degrading).abs() < 0.012,
            "degrading fraction {degrading} vs {}",
            c.categories.degrading
        );
    }

    #[test]
    fn benign_faults_are_stable() {
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let spec = sample_spec(&c, &mut rng);
            let f = sample_benign_fault(&c, &spec, SimDuration::days(120), &mut rng);
            assert!(!f.profile.degrading);
            assert!(f.spread.is_none());
            assert!(f.dq_mask != 0 && f.beat_mask != 0);
        }
    }

    #[test]
    fn benign_x8_faults_are_single_dq() {
        let mut c = cfg();
        c.x8_fraction = 1.0;
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let spec = sample_spec(&c, &mut rng);
            assert_eq!(spec.width, DataWidth::X8);
            let f = sample_benign_fault(&c, &spec, SimDuration::days(120), &mut rng);
            assert_eq!(f.dq_mask.count_ones(), 1, "x8 benign must be 1 DQ");
        }
    }

    #[test]
    fn purley_benign_mimics_stay_on_strong_beats() {
        let mut c = cfg();
        c.patterns.mimic_prob = 1.0;
        c.x8_fraction = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let spec = sample_spec(&c, &mut rng);
            let f = sample_benign_fault(&c, &spec, SimDuration::days(120), &mut rng);
            if f.dq_mask.count_ones() >= 2 {
                assert_eq!(
                    f.beat_mask & 0b1010_1010,
                    0,
                    "multi-DQ benign mimic on Purley must avoid weak beats"
                );
            }
        }
    }

    #[test]
    fn degrading_faults_degrade() {
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(6);
        let mut spreads = 0;
        let mut stalls = 0;
        for _ in 0..300 {
            let spec = sample_spec(&c, &mut rng);
            let f = sample_degrading_fault(&c, &spec, SimDuration::days(270), &mut rng);
            assert!(f.profile.degrading);
            if f.spread.is_some() {
                spreads += 1;
            }
            if f.profile.stall_at.is_some() {
                stalls += 1;
            }
        }
        // Purley: spread_prob 0.10 (and gated on reaching the threshold),
        // stall_prob 0.35.
        assert!(spreads > 0 && spreads < 90, "spreads={spreads}");
        assert!((40..150).contains(&stalls), "stalls={stalls}");
    }

    #[test]
    fn sudden_faults_are_immediately_catastrophic() {
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(7);
        let spec = sample_spec(&c, &mut rng);
        let f = sample_sudden_fault(&spec, SimDuration::days(120), &mut rng);
        assert_eq!(f.mode, FaultMode::MultiDevice);
        assert_eq!(f.extra_devices.len(), 1);
        assert_ne!(f.extra_devices[0], f.device);
        assert!(f.profile.base > 0.5);
        assert_eq!(f.beat_mask, 0xFF);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            let x = *weighted_choice(&[0usize, 1, 2], &[0.8, 0.15, 0.05], &mut rng);
            counts[x] += 1;
        }
        assert!(counts[0] > 2200 && counts[2] < 350, "{counts:?}");
    }

    #[test]
    fn poisson_mean_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 =
            (0..5000).map(|_| sample_poisson(0.25, &mut rng) as f64).sum::<f64>() / 5000.0;
        assert!((mean - 0.25).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn beat_mask_has_requested_bits() {
        let mut rng = StdRng::seed_from_u64(10);
        for n in 1..=8 {
            let m = random_beat_mask(n, &mut rng);
            assert_eq!(m.count_ones(), n);
        }
    }
}
