//! Sharded fleet simulation: fleet-scale runs on a worker pool with a
//! deterministic k-way merge.
//!
//! The paper's findings are statistics over ~250k production servers; at
//! that scale a single merged [`BmcLog`] pass is wall-clock-bound. This
//! module partitions the planned fleet into `shards` contiguous
//! sub-fleets, simulates them on a pool of `workers` threads, and k-way
//! merges the per-shard event streams by `(time, dimm_id, seq)` into a
//! single stream that is **bit-identical to the sequential simulator and
//! invariant to both shard count and worker count**.
//!
//! # Determinism scheme
//!
//! Every DIMM's RNG stream is seeded by SplitMix64 from
//! `(master_seed, platform_index, dimm_index)` — stable *plan
//! coordinates* fixed during the sequential planning phase
//! ([`plan_fleet`](crate::fleet)), before any shard or worker exists.
//! Worker identity and shard identity never enter the derivation, so the
//! set of generated events is a pure function of the [`FleetConfig`].
//! (A naive "seed per shard, stream within shard" scheme would make the
//! events themselves depend on the shard count; deriving per-DIMM
//! streams from plan coordinates is what lets the shard count be a pure
//! execution detail.)
//!
//! # Merge ordering key
//!
//! The sequential oracle orders events by a stable time sort over
//! plan-major push order. Because every plan owns a distinct, strictly
//! increasing server id, that order is exactly `(time, dimm_id,
//! within-DIMM push sequence)`. Each shard stable-sorts its own events
//! by `(time, dimm_id)` (preserving within-DIMM push order for ties) and
//! the k-way merge compares `(time, dimm_id)` across shard heads — a
//! DIMM lives in exactly one shard, so the composite key is total.
//!
//! # Memory bound
//!
//! Shard outputs travel over a *bounded* channel
//! ([`ShardConfig::channel_capacity`]): a worker that finishes a shard
//! blocks until the merger takes it, so at most
//! `workers + channel_capacity` completed shard buffers are resident on
//! top of the merge frontier. The merged stream itself never
//! materializes: [`ShardedFleet::run_stream`] hands each event to the
//! sink and drops it, so downstream consumers (e.g. the MLOps ingestor)
//! see constant memory regardless of fleet size, and each shard buffer
//! is freed as soon as the merge drains it.

use crate::config::FleetConfig;
use crate::dimm::{simulate_dimm_ras, StormPolicy};
use crate::fleet::{plan_fleet, DimmTruth, FleetResult, PlannedDimm};
use mfp_dram::address::DimmId;
use mfp_dram::bmc::BmcLog;
use mfp_dram::event::MemEvent;
use mfp_dram::geometry::Platform;
use mfp_dram::spec::DimmSpec;
use mfp_dram::time::SimTime;
use mfp_ecc::platforms::CachedPlatformEcc;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;

/// Execution knobs of a sharded run. None of them affect the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of fleet partitions (clamped to at least 1). More shards
    /// mean smaller per-shard buffers and better load balance.
    pub shards: usize,
    /// Worker threads simulating shards (clamped to at least 1).
    pub workers: usize,
    /// Completed shard outputs the bounded channel may hold before
    /// producers block (clamped to at least 1); the peak resident set is
    /// `workers + channel_capacity` shard buffers.
    pub channel_capacity: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 8,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16),
            channel_capacity: 2,
        }
    }
}

impl ShardConfig {
    /// A config with `shards` shards and `workers` workers.
    pub fn new(shards: usize, workers: usize) -> Self {
        ShardConfig {
            shards,
            workers,
            ..ShardConfig::default()
        }
    }
}

/// Per-shard execution telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Shard index, `0..shards`.
    pub shard: usize,
    /// DIMMs simulated by this shard.
    pub dimms: usize,
    /// Events the shard emitted.
    pub events: u64,
    /// Wall-clock seconds the shard's simulation took.
    pub wall_secs: f64,
}

/// Whole-run execution telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedStats {
    /// Effective shard count (≤ requested: empty trailing shards are
    /// never created).
    pub shards: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Events emitted by the merged stream.
    pub merged_events: u64,
    /// High-water mark of completed shard outputs queued for the merger
    /// (bounded by `channel_capacity + workers`).
    pub max_queue_depth: usize,
    /// Per-shard breakdown, ordered by shard index.
    pub per_shard: Vec<ShardStats>,
}

/// Result of a streamed sharded run: everything except the event stream
/// itself, which went to the sink.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome {
    /// Ground truth per DIMM, in plan (= generation) order — identical
    /// to [`FleetResult::dimms`] of a sequential run.
    pub dimms: Vec<DimmTruth>,
    /// Execution statistics.
    pub stats: ShardedStats,
}

/// A planned fleet ready for sharded execution.
///
/// Planning (phase 1) is sequential and cheap; it fixes every DIMM's
/// identity, spec, faults and RNG seed. The plan can be inspected (e.g.
/// to register the DIMM catalog with a data lake *before* events start
/// flowing) and then executed with any [`ShardConfig`].
#[derive(Debug, Clone)]
pub struct ShardedFleet {
    cfg: FleetConfig,
    plans: Vec<PlannedDimm>,
}

/// One shard's finished output, sent over the bounded channel.
struct ShardOutput {
    shard: usize,
    events: Vec<MemEvent>,
    truths: Vec<DimmTruth>,
    stats: ShardStats,
}

/// Head of one shard's stream inside the merge heap. Ordered as a
/// *max*-heap entry, so comparisons are reversed to pop the minimum
/// `(time, dimm, shard)` first.
struct MergeHead {
    time: SimTime,
    dimm: DimmId,
    shard: usize,
    event: MemEvent,
}

impl MergeHead {
    fn key(&self) -> (SimTime, DimmId, usize) {
        (self.time, self.dimm, self.shard)
    }
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for MergeHead {}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other.key().cmp(&self.key())
    }
}

impl ShardedFleet {
    /// Runs the (sequential, deterministic) planning phase.
    pub fn plan(cfg: &FleetConfig) -> Self {
        ShardedFleet {
            cfg: cfg.clone(),
            plans: plan_fleet(cfg),
        }
    }

    /// Number of DIMMs the fleet will simulate.
    pub fn dimm_count(&self) -> usize {
        self.plans.len()
    }

    /// The fleet's DIMM catalog, known before any event is simulated —
    /// callers use this to pre-register DIMMs with downstream stores.
    pub fn catalog(&self) -> impl Iterator<Item = (DimmId, Platform, DimmSpec)> + '_ {
        self.plans.iter().map(|(p, plan, _)| (plan.id, *p, plan.spec))
    }

    /// Simulates the fleet on `scfg.workers` threads across `scfg.shards`
    /// partitions, handing the merged, time-ordered event stream to
    /// `sink` one event at a time.
    ///
    /// The stream is bit-identical to
    /// [`simulate_fleet`](crate::fleet::simulate_fleet) for the same
    /// `FleetConfig`, whatever the shard and worker counts.
    pub fn run_stream<F: FnMut(MemEvent)>(&self, scfg: &ShardConfig, mut sink: F) -> ShardedOutcome {
        let span = mfp_obs::latency("sim_sharded_seconds", &[]).time();
        let shards = scfg.shards.max(1);
        let workers = scfg.workers.max(1);
        let capacity = scfg.channel_capacity.max(1);
        let storm = StormPolicy {
            threshold: self.cfg.storm_threshold,
            suppression: self.cfg.storm_suppression,
        };

        let chunk = self.plans.len().div_ceil(shards).max(1);
        let slices: Vec<&[PlannedDimm]> = self.plans.chunks(chunk).collect();
        let shard_count = slices.len();

        let next = AtomicUsize::new(0);
        let queued = AtomicUsize::new(0);
        let depth_gauge = mfp_obs::gauge("sim_shard_queue_depth", &[]);
        let (tx, rx) = sync_channel::<ShardOutput>(capacity);

        let mut outputs: Vec<ShardOutput> = Vec::with_capacity(shard_count);
        let mut max_queue_depth = 0usize;
        std::thread::scope(|s| {
            for _ in 0..workers.min(shard_count.max(1)) {
                let tx = tx.clone();
                let next = &next;
                let queued = &queued;
                let depth_gauge = &depth_gauge;
                let slices = &slices;
                let cfg = &self.cfg;
                s.spawn(move || {
                    // Decode memoization is per worker (pure, so shared
                    // state never leaks into outcomes).
                    let eccs: Vec<(Platform, CachedPlatformEcc)> = Platform::ALL
                        .iter()
                        .map(|&p| (p, CachedPlatformEcc::for_platform(p)))
                        .collect();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= slices.len() {
                            break;
                        }
                        let out = simulate_shard(i, slices[i], cfg, storm, &eccs);
                        depth_gauge.set(queued.fetch_add(1, Ordering::Relaxed) as f64 + 1.0);
                        if tx.send(out).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            // Collect every shard before merging: a shard's earliest event
            // is unknowable until it finishes, so the merge frontier needs
            // all heads. The bounded channel caps how many finished shards
            // can pile up ahead of this loop.
            while let Ok(out) = rx.recv() {
                let depth = queued.fetch_sub(1, Ordering::Relaxed);
                max_queue_depth = max_queue_depth.max(depth);
                depth_gauge.set(depth.saturating_sub(1) as f64);
                outputs.push(out);
            }
        });
        assert_eq!(
            outputs.len(),
            shard_count,
            "a simulation worker panicked before delivering its shard"
        );

        outputs.sort_by_key(|o| o.shard);
        let mut dimms = Vec::with_capacity(self.plans.len());
        let mut per_shard = Vec::with_capacity(shard_count);
        let mut heap: BinaryHeap<MergeHead> = BinaryHeap::with_capacity(shard_count);
        let mut streams: Vec<std::vec::IntoIter<MemEvent>> = Vec::with_capacity(shard_count);
        for out in outputs {
            dimms.extend(out.truths);
            per_shard.push(out.stats);
            let mut iter = out.events.into_iter();
            if let Some(event) = iter.next() {
                heap.push(MergeHead {
                    time: event.time(),
                    dimm: event.dimm(),
                    shard: out.shard,
                    event,
                });
            }
            streams.push(iter);
        }

        // K-way merge: pop the minimum (time, dimm) head, refill from the
        // same shard. Each exhausted shard buffer is dropped here, so
        // resident memory shrinks as the merge advances.
        let mut merged_events = 0u64;
        while let Some(head) = heap.pop() {
            sink(head.event);
            merged_events += 1;
            if let Some(event) = streams[head.shard].next() {
                heap.push(MergeHead {
                    time: event.time(),
                    dimm: event.dimm(),
                    shard: head.shard,
                    event,
                });
            }
        }

        mfp_obs::counter("sim_sharded_runs", &[]).incr();
        mfp_obs::counter("sim_sharded_events_merged", &[]).add(merged_events);
        span.stop();
        ShardedOutcome {
            dimms,
            stats: ShardedStats {
                shards: shard_count,
                workers,
                merged_events,
                max_queue_depth,
                per_shard,
            },
        }
    }
}

/// Simulates one shard's DIMMs in plan order and sorts its events by the
/// merge key.
fn simulate_shard(
    shard: usize,
    slice: &[PlannedDimm],
    cfg: &FleetConfig,
    storm: StormPolicy,
    eccs: &[(Platform, CachedPlatformEcc)],
) -> ShardOutput {
    let started = std::time::Instant::now();
    let mut log = BmcLog::new();
    let mut truths = Vec::with_capacity(slice.len());
    for (platform, plan, seed) in slice {
        let ecc = &eccs
            .iter()
            .find(|(p, _)| p == platform)
            .expect("platform ecc")
            .1;
        let mut rng = StdRng::seed_from_u64(*seed);
        let outcome = simulate_dimm_ras(
            plan,
            ecc,
            cfg.horizon,
            storm,
            cfg.ras,
            &mut log,
            &mut rng,
        );
        truths.push(DimmTruth {
            id: plan.id,
            platform: *platform,
            spec: plan.spec,
            category: plan.category,
            fault_modes: plan.faults.iter().map(|f| f.mode).collect(),
            outcome,
        });
    }
    let mut events = log.into_events();
    // Stable sort: within-(time, dimm) ties keep push order, matching the
    // sequential oracle's stable time sort over plan-major push order.
    events.sort_by_key(|e| (e.time(), e.dimm()));
    let wall_secs = started.elapsed().as_secs_f64();

    let shard_label = shard.to_string();
    mfp_obs::counter("sim_shard_events", &[("shard", &shard_label)])
        .add(events.len() as u64);
    mfp_obs::latency("sim_shard_seconds", &[]).record(wall_secs);
    let stats = ShardStats {
        shard,
        dimms: slice.len(),
        events: events.len() as u64,
        wall_secs,
    };
    ShardOutput {
        shard,
        events,
        truths,
        stats,
    }
}

/// Runs a sharded simulation and materializes a [`FleetResult`], for
/// callers that want the drop-in equivalent of
/// [`simulate_fleet`](crate::fleet::simulate_fleet).
pub fn simulate_fleet_sharded(cfg: &FleetConfig, scfg: &ShardConfig) -> FleetResult {
    let fleet = ShardedFleet::plan(cfg);
    let mut log = BmcLog::new();
    let outcome = fleet.run_stream(scfg, |e| log.push(e));
    log.sort(); // no-op: the merged stream arrives time-ordered
    FleetResult {
        log,
        dimms: outcome.dimms,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::simulate_fleet_with_workers;

    fn small_cfg(seed: u64) -> FleetConfig {
        let mut cfg = FleetConfig::smoke(seed);
        cfg.horizon = mfp_dram::time::SimDuration::days(60);
        cfg
    }

    #[test]
    fn sharded_is_bit_identical_across_shard_and_worker_counts() {
        let cfg = small_cfg(42);
        let oracle = simulate_fleet_with_workers(&cfg, 1);
        for shards in [1usize, 2, 4, 8] {
            for workers in [1usize, 2, 4] {
                let got = simulate_fleet_sharded(&cfg, &ShardConfig::new(shards, workers));
                assert_eq!(
                    got.log.events(),
                    oracle.log.events(),
                    "event stream must be invariant (shards={shards} workers={workers})"
                );
                assert_eq!(
                    got.dimms, oracle.dimms,
                    "truth order must be invariant (shards={shards} workers={workers})"
                );
            }
        }
    }

    #[test]
    fn more_shards_than_dimms_is_fine() {
        let mut cfg = small_cfg(7);
        for pc in &mut cfg.platforms {
            pc.dimms_with_ces = 3;
            pc.sudden_only_dimms = 1;
        }
        let oracle = simulate_fleet_with_workers(&cfg, 1);
        let got = simulate_fleet_sharded(&cfg, &ShardConfig::new(64, 3));
        assert_eq!(got.log.events(), oracle.log.events());
        assert_eq!(got.dimms.len(), 12);
    }

    #[test]
    fn degenerate_knobs_are_clamped() {
        let cfg = small_cfg(3);
        let oracle = simulate_fleet_with_workers(&cfg, 1);
        let got = simulate_fleet_sharded(
            &cfg,
            &ShardConfig {
                shards: 0,
                workers: 0,
                channel_capacity: 0,
            },
        );
        assert_eq!(got.log.events(), oracle.log.events());
    }

    #[test]
    fn stream_is_time_ordered_with_dimm_tiebreak() {
        let cfg = small_cfg(11);
        let fleet = ShardedFleet::plan(&cfg);
        let mut last: Option<(SimTime, DimmId)> = None;
        let mut n = 0u64;
        let outcome = fleet.run_stream(&ShardConfig::new(4, 2), |e| {
            if let Some((t, d)) = last {
                assert!(
                    (t, d) <= (e.time(), e.dimm()),
                    "merge key must be non-decreasing"
                );
            }
            last = Some((e.time(), e.dimm()));
            n += 1;
        });
        assert_eq!(outcome.stats.merged_events, n);
        assert!(n > 0);
    }

    #[test]
    fn catalog_is_known_before_simulation_and_matches_truths() {
        let cfg = small_cfg(5);
        let fleet = ShardedFleet::plan(&cfg);
        let catalog: Vec<_> = fleet.catalog().collect();
        assert_eq!(catalog.len(), fleet.dimm_count());
        let outcome = fleet.run_stream(&ShardConfig::new(2, 2), |_| {});
        assert_eq!(outcome.dimms.len(), catalog.len());
        for ((id, platform, spec), truth) in catalog.iter().zip(&outcome.dimms) {
            assert_eq!(*id, truth.id);
            assert_eq!(*platform, truth.platform);
            assert_eq!(*spec, truth.spec);
        }
    }

    #[test]
    fn per_shard_stats_partition_the_run() {
        let cfg = small_cfg(9);
        let fleet = ShardedFleet::plan(&cfg);
        let outcome = fleet.run_stream(&ShardConfig::new(4, 2), |_| {});
        let stats = &outcome.stats;
        assert_eq!(stats.shards, stats.per_shard.len());
        assert_eq!(
            stats.per_shard.iter().map(|s| s.events).sum::<u64>(),
            stats.merged_events
        );
        assert_eq!(
            stats.per_shard.iter().map(|s| s.dimms).sum::<usize>(),
            fleet.dimm_count()
        );
        for (i, s) in stats.per_shard.iter().enumerate() {
            assert_eq!(s.shard, i);
            assert!(s.wall_secs >= 0.0);
        }
        assert!(stats.max_queue_depth >= 1);
    }

    #[test]
    fn sharded_run_reports_telemetry() {
        let cfg = small_cfg(13);
        let _ = simulate_fleet_sharded(&cfg, &ShardConfig::new(2, 2));
        let snap = mfp_obs::global().snapshot();
        assert!(snap.counter("sim_sharded_runs") >= 1);
        assert!(snap.counter("sim_sharded_events_merged") > 0);
        // Per-shard series merge into one logical counter in the snapshot.
        assert!(snap.counter("sim_shard_events") > 0);
        assert!(
            snap.counter_labeled("sim_shard_events", &[("shard", "0")])
                .is_some()
        );
    }
}
