//! # mfp-sim
//!
//! The DRAM fault-injection fleet simulator: the synthetic substitute for
//! the paper's proprietary production dataset (~250k servers, Jan–Oct
//! 2023).
//!
//! The pipeline is: [`config`] calibrates per-platform fleets →
//! [`gen`] samples DIMM specs and fault instances ([`fault`]) →
//! [`dimm`] plays each fault's Poisson hit process through the platform's
//! real ECC decoder (`mfp-ecc`) → [`fleet`] merges everything into a
//! time-ordered BMC log plus per-DIMM ground truth.
//!
//! Because CE/UE outcomes are produced by actual syndrome decoding of
//! injected error patterns, cross-platform differences in failure
//! behaviour *emerge from the ECC models* rather than being scripted —
//! which is precisely the causal claim of the paper.
//!
//! # Examples
//!
//! ```
//! use mfp_sim::prelude::*;
//!
//! let cfg = FleetConfig::smoke(42);
//! let fleet = simulate_fleet(&cfg);
//! assert!(!fleet.log.is_empty());
//! let (ces, ues, storms) = fleet.log.counts();
//! assert!(ces > ues);
//! # let _ = storms;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod dimm;
pub mod events;
pub mod fault;
pub mod fleet;
pub mod gen;
pub mod ras;
pub mod sharded;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::chaos::{inject_chaos, BurstLoss, ChaosConfig, ChaosStats};
    pub use crate::config::{DimmCategory, FleetConfig, PlatformConfig};
    pub use crate::dimm::{simulate_dimm, DimmOutcome, StormPolicy};
    pub use crate::events::{simulate_fleet_events, EventFleet};
    pub use crate::fault::{Fault, FaultMode, SeverityProfile};
    pub use crate::fleet::{simulate_fleet, DimmTruth, FleetResult};
    pub use crate::gen::DimmPlan;
    pub use crate::ras::{AdddcPolicy, AdddcState, RasAction, RasPolicy, RasReport, RasState};
    pub use crate::sharded::{
        simulate_fleet_sharded, ShardConfig, ShardStats, ShardedFleet, ShardedOutcome,
        ShardedStats,
    };
}
