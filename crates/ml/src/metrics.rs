//! Evaluation metrics: precision / recall / F1 and the paper's VM
//! Interruption Reduction Rate (VIRR), plus threshold selection and
//! DIMM-level aggregation of sample-level scores.

use mfp_dram::address::DimmId;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_features::dataset::SampleSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: u32,
    /// False positives.
    pub fp: u32,
    /// False negatives.
    pub fn_: u32,
    /// True negatives.
    pub tn: u32,
}

impl Confusion {
    /// Builds a confusion matrix from labels and boolean predictions.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn from_predictions(y_true: &[bool], y_pred: &[bool]) -> Self {
        assert_eq!(y_true.len(), y_pred.len());
        let mut c = Confusion::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t, p) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (true, false) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Precision = TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Recall = TP / (TP + FN).
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// F1 = harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// VM Interruption Reduction Rate with cold-migration fraction `y_c`:
    /// `(1 - y_c / precision) * recall` (paper §IV; negative when precision
    /// drops below `y_c`, meaning prediction *adds* interruptions).
    pub fn virr(&self, y_c: f64) -> f64 {
        let p = self.precision();
        if p == 0.0 {
            return 0.0;
        }
        (1.0 - y_c / p) * self.recall()
    }
}

/// Summary of one evaluated model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The confusion matrix.
    pub confusion: Confusion,
    /// Decision threshold used.
    pub threshold: f32,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1-score.
    pub f1: f64,
    /// VIRR at the paper's `y_c = 0.1`.
    pub virr: f64,
}

impl Evaluation {
    /// Computes the summary from a confusion matrix.
    pub fn from_confusion(c: Confusion, threshold: f32) -> Self {
        Evaluation {
            confusion: c,
            threshold,
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
            virr: c.virr(0.1),
        }
    }
}

/// Distinct finite score values, subsampled to at most `cap` quantile
/// candidates. Non-finite scores (NaN, ±inf from a degenerate model)
/// cannot serve as operating thresholds and are dropped; the result is
/// empty when no finite score exists.
fn threshold_candidates(scores: &[f32], cap: usize) -> Vec<f32> {
    let mut sorted: Vec<f32> = scores.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sorted.dedup();
    if sorted.len() <= cap {
        sorted
    } else {
        (0..cap)
            .map(|k| sorted[k * (sorted.len() - 1) / (cap - 1)])
            .collect()
    }
}

/// Picks the probability threshold maximizing F1 on `(labels, scores)`.
///
/// Scans the distinct finite score quantiles (up to 200 candidates);
/// returns the conventional 0.5 when there is nothing to scan.
pub fn best_f1_threshold(labels: &[bool], scores: &[f32]) -> f32 {
    assert_eq!(labels.len(), scores.len());
    let candidates = threshold_candidates(scores, 200);
    let mut best = (0.5f32, -1.0f64);
    for &th in &candidates {
        let preds: Vec<bool> = scores.iter().map(|&s| s >= th).collect();
        let f1 = Confusion::from_predictions(labels, &preds).f1();
        if f1 > best.1 {
            best = (th, f1);
        }
    }
    best.0
}

/// Aggregates sample-level scores to DIMM level: a DIMM is *predicted*
/// failing when any of its samples scores at or above the threshold, and
/// *actually* failing when any of its samples is labelled positive.
///
/// Returns `(y_true, y_pred)` in DIMM order.
#[allow(clippy::needless_range_loop)] // set columns and scores walked in lockstep
pub fn dimm_level(set: &SampleSet, scores: &[f32], threshold: f32) -> (Vec<bool>, Vec<bool>) {
    assert_eq!(set.len(), scores.len());
    let mut per_dimm: BTreeMap<DimmId, (bool, bool)> = BTreeMap::new();
    for i in 0..set.len() {
        let e = per_dimm.entry(set.dimms[i]).or_insert((false, false));
        e.0 |= set.labels[i];
        e.1 |= scores[i] >= threshold;
    }
    per_dimm.values().copied().unzip()
}

/// The set's effective sampling cadence: the smallest positive gap between
/// successive same-DIMM sample times. Robust to negative downsampling
/// (which removes whole samples but leaves adjacent pairs elsewhere in any
/// non-trivial set). Falls back to an effectively unbounded gap when no
/// DIMM carries two samples at distinct times, which reproduces the
/// gap-blind behaviour on sets without usable time structure.
pub fn derive_sample_gap(set: &SampleSet) -> SimDuration {
    let mut last: BTreeMap<DimmId, SimTime> = BTreeMap::new();
    let mut min_gap: Option<SimDuration> = None;
    for i in 0..set.len() {
        let t = set.times[i];
        if let Some(prev) = last.insert(set.dimms[i], t) {
            if let Some(gap) = t.checked_duration_since(prev) {
                if gap > SimDuration::ZERO && min_gap.is_none_or(|m| gap < m) {
                    min_gap = Some(gap);
                }
            }
        }
    }
    min_gap.unwrap_or(SimDuration::secs(u64::MAX))
}

/// DIMM-level aggregation with an alarm-voting rule: a DIMM is predicted
/// failing only when `votes` *consecutive* samples (in time order) score at
/// or above the threshold — the de-duplication production alarm systems
/// apply to suppress one-off score spikes.
///
/// "Consecutive" is judged against the set's own sampling cadence (see
/// [`derive_sample_gap`]): two above-threshold samples separated by a hole
/// in the grid — downsampled negatives, a DIMM going quiet for a while —
/// do not accumulate into one run. Use [`dimm_level_vote_with_gap`] to
/// supply the cadence explicitly.
///
/// Returns `(y_true, y_pred)` in DIMM order.
pub fn dimm_level_vote(
    set: &SampleSet,
    scores: &[f32],
    threshold: f32,
    votes: usize,
) -> (Vec<bool>, Vec<bool>) {
    dimm_level_vote_with_gap(set, scores, threshold, votes, derive_sample_gap(set))
}

/// [`dimm_level_vote`] with an explicit vote-run contiguity bound: a run
/// continues only when the time step from the previous same-DIMM sample is
/// at most `max_gap` (pass the problem's `sample_interval` when it is
/// known).
///
/// Returns `(y_true, y_pred)` in DIMM order.
#[allow(clippy::needless_range_loop)] // set columns and scores walked in lockstep
pub fn dimm_level_vote_with_gap(
    set: &SampleSet,
    scores: &[f32],
    threshold: f32,
    votes: usize,
    max_gap: SimDuration,
) -> (Vec<bool>, Vec<bool>) {
    assert_eq!(set.len(), scores.len());
    let votes = votes.max(1);
    // Group sample indices per DIMM (already in time order per DIMM since
    // build_samples walks each DIMM's grid chronologically).
    // Per DIMM: (true-label, run length, fired, previous sample time).
    let mut per_dimm: BTreeMap<DimmId, (bool, u32, bool, Option<SimTime>)> = BTreeMap::new();
    for i in 0..set.len() {
        let e = per_dimm
            .entry(set.dimms[i])
            .or_insert((false, 0, false, None));
        e.0 |= set.labels[i];
        let t = set.times[i];
        // A hole in the sampling grid breaks the run: the votes on either
        // side of it are not consecutive observations of the DIMM.
        let contiguous = match e.3 {
            Some(prev) => t
                .checked_duration_since(prev)
                .is_some_and(|gap| gap <= max_gap),
            None => true,
        };
        e.3 = Some(t);
        if !contiguous {
            e.1 = 0;
        }
        if scores[i] >= threshold {
            e.1 += 1;
            if e.1 as usize >= votes {
                e.2 = true;
            }
        } else {
            e.1 = 0;
        }
    }
    per_dimm.values().map(|&(t, _, p, _)| (t, p)).unzip()
}

/// Picks the threshold maximizing DIMM-level F1 under the voting rule
/// (same gap semantics as [`dimm_level_vote`]; the cadence is derived once
/// and reused across candidates). Returns 0.5 when no finite score exists.
pub fn best_vote_threshold(set: &SampleSet, scores: &[f32], votes: usize) -> f32 {
    assert_eq!(set.len(), scores.len());
    let candidates = threshold_candidates(scores, 100);
    if candidates.is_empty() {
        return 0.5;
    }
    let max_gap = derive_sample_gap(set);
    let mut scored: Vec<(f32, f64)> = Vec::with_capacity(candidates.len());
    let mut best_f1 = -1.0f64;
    for &th in &candidates {
        let (y_true, y_pred) = dimm_level_vote_with_gap(set, scores, th, votes, max_gap);
        let f1 = Confusion::from_predictions(&y_true, &y_pred).f1();
        scored.push((th, f1));
        best_f1 = best_f1.max(f1);
    }
    // Among near-optimal thresholds, prefer the lowest (recall-leaning):
    // validation F1 surfaces are spiky with few positive DIMMs, and a
    // lower operating point transfers more robustly to longer windows.
    scored
        .iter()
        .filter(|&&(_, f1)| f1 >= best_f1 * 0.98)
        .map(|&(th, _)| th)
        .fold(f32::INFINITY, f32::min)
        .min(1.0)
}

/// One point of a precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Decision threshold.
    pub threshold: f32,
    /// Precision at this threshold.
    pub precision: f64,
    /// Recall at this threshold.
    pub recall: f64,
}

/// Precision-recall curve over up to `max_points` threshold quantiles,
/// ordered by increasing recall.
pub fn pr_curve(labels: &[bool], scores: &[f32], max_points: usize) -> Vec<PrPoint> {
    assert_eq!(labels.len(), scores.len());
    let mut sorted: Vec<f32> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sorted.dedup();
    let max_points = max_points.max(2);
    let thresholds: Vec<f32> = if sorted.len() <= max_points {
        sorted
    } else {
        (0..max_points)
            .map(|k| sorted[k * (sorted.len() - 1) / (max_points - 1)])
            .collect()
    };
    let mut points: Vec<PrPoint> = thresholds
        .into_iter()
        .map(|threshold| {
            let preds: Vec<bool> = scores.iter().map(|&s| s >= threshold).collect();
            let c = Confusion::from_predictions(labels, &preds);
            PrPoint {
                threshold,
                precision: c.precision(),
                recall: c.recall(),
            }
        })
        .collect();
    points.sort_by(|a, b| a.recall.partial_cmp(&b.recall).unwrap());
    points
}

/// Area under the ROC curve via the rank-sum (Mann-Whitney) statistic,
/// with midrank tie handling. Returns 0.5 when one class is absent.
pub fn roc_auc(labels: &[bool], scores: &[f32]) -> f64 {
    assert_eq!(labels.len(), scores.len());
    let mut pairs: Vec<(f32, bool)> = scores.iter().copied().zip(labels.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let n = pairs.len();
    let mut rank_sum = 0.0f64;
    let mut pos = 0u64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let avg_rank = (i + 1 + j) as f64 / 2.0;
        for p in &pairs[i..j] {
            if p.1 {
                rank_sum += avg_rank;
                pos += 1;
            }
        }
        i = j;
    }
    let neg = n as u64 - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    (rank_sum - (pos * (pos + 1) / 2) as f64) / (pos as f64 * neg as f64)
}

/// Picks the threshold maximizing *DIMM-level* F1 on a validation set.
/// Returns the conventional 0.5 when no finite score exists.
pub fn best_dimm_f1_threshold(set: &SampleSet, scores: &[f32]) -> f32 {
    assert_eq!(set.len(), scores.len());
    let candidates = threshold_candidates(scores, 100);
    let mut best = (0.5f32, -1.0f64);
    for &th in &candidates {
        let (y_true, y_pred) = dimm_level(set, scores, th);
        let f1 = Confusion::from_predictions(&y_true, &y_pred).f1();
        if f1 > best.1 {
            best = (th, f1);
        }
    }
    best.0
}

/// Full evaluation pipeline at DIMM level: threshold tuned on
/// `(val_labels, val_scores)`, applied to the test set.
pub fn evaluate_dimm_level(
    val_labels: &[bool],
    val_scores: &[f32],
    test: &SampleSet,
    test_scores: &[f32],
) -> Evaluation {
    let th = best_f1_threshold(val_labels, val_scores);
    let (y_true, y_pred) = dimm_level(test, test_scores, th);
    Evaluation::from_confusion(Confusion::from_predictions(&y_true, &y_pred), th)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::time::SimTime;

    #[test]
    fn confusion_counts() {
        let t = [true, true, false, false, true];
        let p = [true, false, true, false, true];
        let c = Confusion::from_predictions(&t, &p);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (2, 1, 1, 1));
    }

    #[test]
    fn metric_formulas() {
        let c = Confusion {
            tp: 6,
            fp: 2,
            fn_: 4,
            tn: 88,
        };
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.recall() - 0.6).abs() < 1e-12);
        let f1 = 2.0 * 0.75 * 0.6 / (0.75 + 0.6);
        assert!((c.f1() - f1).abs() < 1e-12);
        // VIRR = (1 - 0.1/0.75) * 0.6
        assert!((c.virr(0.1) - (1.0 - 0.1 / 0.75) * 0.6).abs() < 1e-12);
    }

    #[test]
    fn virr_negative_when_precision_below_yc() {
        let c = Confusion {
            tp: 1,
            fp: 19,
            fn_: 1,
            tn: 79,
        };
        assert!(c.precision() < 0.1);
        assert!(c.virr(0.1) < 0.0);
    }

    #[test]
    fn degenerate_cases_are_zero() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.virr(0.1), 0.0);
    }

    #[test]
    fn best_threshold_separates_perfectly() {
        let labels = [false, false, false, true, true];
        let scores = [0.1f32, 0.2, 0.3, 0.8, 0.9];
        let th = best_f1_threshold(&labels, &scores);
        let preds: Vec<bool> = scores.iter().map(|&s| s >= th).collect();
        assert_eq!(Confusion::from_predictions(&labels, &preds).f1(), 1.0);
    }

    #[test]
    fn pr_curve_is_monotone_in_recall_and_anchored() {
        let labels = [false, false, true, false, true, true];
        let scores = [0.1f32, 0.2, 0.55, 0.4, 0.8, 0.9];
        let curve = pr_curve(&labels, &scores, 50);
        assert!(curve.windows(2).all(|w| w[0].recall <= w[1].recall));
        // The lowest threshold predicts everything positive: recall 1,
        // precision = base rate (3 positives of 6).
        assert!(curve
            .iter()
            .any(|p| p.recall == 1.0 && (p.precision - 0.5).abs() < 1e-12));
        // The curve also contains a perfect-precision point (threshold
        // above every negative score).
        assert!(curve.iter().any(|p| p.precision == 1.0));
    }

    #[test]
    fn roc_auc_perfect_and_random() {
        let labels = [false, false, false, true, true];
        let perfect = [0.1f32, 0.2, 0.3, 0.8, 0.9];
        assert!((roc_auc(&labels, &perfect) - 1.0).abs() < 1e-12);
        let inverted = [0.9f32, 0.8, 0.7, 0.2, 0.1];
        assert!(roc_auc(&labels, &inverted) < 1e-12);
        // All-tied scores: AUC 0.5 by midrank convention.
        let flat = [0.5f32; 5];
        assert!((roc_auc(&labels, &flat) - 0.5).abs() < 1e-12);
        // Degenerate single-class input.
        assert_eq!(roc_auc(&[true, true], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn vote_runs_break_across_sampling_gaps() {
        // Regression: two above-threshold scores adjacent in the array but
        // a missing grid step apart in time counted as "consecutive" votes
        // and alarmed the DIMM.
        let day = 86_400u64;
        let a = DimmId::new(0, 0);
        let b = DimmId::new(1, 0);
        let mut set = SampleSet::new();
        set.schema = vec!["x".into()];
        // DIMM a: days 1 and 3 (hole at day 2). DIMM b: days 1 and 2.
        set.push(vec![0.0], true, a, SimTime::from_secs(day));
        set.push(vec![0.0], true, a, SimTime::from_secs(3 * day));
        set.push(vec![0.0], true, b, SimTime::from_secs(day));
        set.push(vec![0.0], true, b, SimTime::from_secs(2 * day));
        let scores = [0.9f32, 0.9, 0.9, 0.9];
        assert_eq!(derive_sample_gap(&set), SimDuration::days(1));
        let (y_true, y_pred) = dimm_level_vote(&set, &scores, 0.5, 2);
        assert_eq!(y_true, vec![true, true]);
        assert_eq!(y_pred, vec![false, true], "a hole must break the run");
        // An explicitly wider contiguity bound admits the 2-day step.
        let (_, y_pred) =
            dimm_level_vote_with_gap(&set, &scores, 0.5, 2, SimDuration::days(2));
        assert_eq!(y_pred, vec![true, true]);
        // The tuned threshold uses the same gap rule: only DIMM b can
        // satisfy votes=2, and 0.9 separates it perfectly.
        let th = best_vote_threshold(&set, &scores, 2);
        let (_, y_pred) = dimm_level_vote(&set, &scores, th, 2);
        assert_eq!(y_pred, vec![false, true]);
    }

    #[test]
    fn derive_sample_gap_falls_back_when_unknowable() {
        let mut set = SampleSet::new();
        set.schema = vec!["x".into()];
        set.push(vec![0.0], true, DimmId::new(0, 0), SimTime::from_secs(5));
        set.push(vec![0.0], false, DimmId::new(1, 0), SimTime::from_secs(9));
        // One sample per DIMM: no cadence to derive, votes behave as before.
        assert_eq!(derive_sample_gap(&set), SimDuration::secs(u64::MAX));
        let (_, y_pred) = dimm_level_vote(&set, &[0.9, 0.9], 0.5, 1);
        assert_eq!(y_pred, vec![true, true]);
    }

    #[test]
    fn threshold_pickers_handle_empty_and_nonfinite_scores() {
        // Regression: an empty candidate list silently produced 1.0 from
        // the vote picker; all pickers now fall back to the conventional
        // 0.5 and never select a non-finite operating point.
        let empty = SampleSet::new();
        assert_eq!(best_vote_threshold(&empty, &[], 2), 0.5);
        assert_eq!(best_f1_threshold(&[], &[]), 0.5);
        assert_eq!(best_dimm_f1_threshold(&empty, &[]), 0.5);
        let mut set = SampleSet::new();
        set.schema = vec!["x".into()];
        set.push(vec![0.0], true, DimmId::new(0, 0), SimTime::from_secs(1));
        set.push(vec![0.0], false, DimmId::new(1, 0), SimTime::from_secs(1));
        let nan = [f32::NAN, f32::NAN];
        assert_eq!(best_vote_threshold(&set, &nan, 1), 0.5);
        assert_eq!(best_f1_threshold(&[true, false], &nan), 0.5);
        let mixed = [f32::INFINITY, 0.8];
        assert!(best_vote_threshold(&set, &mixed, 1).is_finite());
        assert!(best_f1_threshold(&[true, false], &mixed).is_finite());
        assert!(best_dimm_f1_threshold(&set, &mixed).is_finite());
    }

    #[test]
    fn dimm_level_aggregates_any_positive() {
        let mut set = SampleSet::new();
        set.schema = vec!["x".into()];
        // DIMM 0: samples neg+pos; DIMM 1: all neg.
        set.push(vec![0.0], false, DimmId::new(0, 0), SimTime::from_secs(1));
        set.push(vec![0.0], true, DimmId::new(0, 0), SimTime::from_secs(2));
        set.push(vec![0.0], false, DimmId::new(1, 0), SimTime::from_secs(3));
        let scores = [0.9f32, 0.1, 0.2];
        let (y_true, y_pred) = dimm_level(&set, &scores, 0.5);
        assert_eq!(y_true, vec![true, false]);
        assert_eq!(y_pred, vec![true, false]);
    }
}
