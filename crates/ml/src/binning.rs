//! Quantile binning shared by the tree learners.
//!
//! Histogram-based tree training (as in LightGBM) discretizes each feature
//! into at most 255 quantile bins once, then every split search is a single
//! pass over bin histograms instead of a sort. The same [`Binner`] is
//! stored inside trained models so inference bins incoming rows
//! identically.

use mfp_features::dataset::SampleSet;
use serde::{Deserialize, Serialize};

/// Maximum number of bins per feature.
pub const MAX_BINS: usize = 255;

/// Per-feature quantile bin edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binner {
    /// `edges[f]` holds ascending upper-inclusive cut points; a value `v`
    /// maps to the first bin whose edge is `>= v`.
    edges: Vec<Vec<f32>>,
}

impl Binner {
    /// Builds bin edges from the samples' empirical quantiles.
    pub fn fit(set: &SampleSet, max_bins: usize) -> Self {
        let d = set.dim();
        let n = set.len();
        let max_bins = max_bins.clamp(2, MAX_BINS);
        let mut edges = Vec::with_capacity(d);
        for f in 0..d {
            let mut vals: Vec<f32> = (0..n).map(|i| set.row(i)[f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            vals.dedup();
            let cuts = if vals.len() <= max_bins {
                // Few distinct values: one bin per value.
                vals
            } else {
                let mut cuts = Vec::with_capacity(max_bins);
                for k in 1..=max_bins {
                    let idx = (k * (vals.len() - 1)) / max_bins;
                    cuts.push(vals[idx]);
                }
                cuts.dedup();
                cuts
            };
            edges.push(cuts);
        }
        Binner { edges }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.edges.len()
    }

    /// Number of bins for feature `f`.
    pub fn bins(&self, f: usize) -> usize {
        self.edges[f].len().max(1)
    }

    /// Bin index of value `v` for feature `f`.
    pub fn bin_value(&self, f: usize, v: f32) -> u8 {
        let e = &self.edges[f];
        if e.is_empty() {
            return 0;
        }
        let idx = e.partition_point(|&cut| cut < v);
        idx.min(e.len() - 1) as u8
    }

    /// Bins a full feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim()`.
    pub fn bin_row(&self, row: &[f32]) -> Vec<u8> {
        assert_eq!(row.len(), self.dim());
        row.iter()
            .enumerate()
            .map(|(f, &v)| self.bin_value(f, v))
            .collect()
    }

    /// The representative threshold (upper edge) of bin `b` of feature `f`:
    /// rows with `bin <= b` satisfy `value <= threshold`.
    pub fn threshold(&self, f: usize, b: u8) -> f32 {
        let e = &self.edges[f];
        if e.is_empty() {
            return 0.0;
        }
        e[(b as usize).min(e.len() - 1)]
    }
}

/// A dataset pre-binned for histogram tree training (column-major codes).
#[derive(Debug, Clone)]
pub struct BinnedData {
    /// The binner used.
    pub binner: Binner,
    /// `codes[f * n + i]` = bin of sample `i`, feature `f`.
    pub codes: Vec<u8>,
    /// Number of samples.
    pub n: usize,
    /// Number of features.
    pub d: usize,
}

impl BinnedData {
    /// Bins an entire sample set.
    pub fn from_samples(set: &SampleSet, max_bins: usize) -> Self {
        let binner = Binner::fit(set, max_bins);
        let n = set.len();
        let d = set.dim();
        let mut codes = vec![0u8; n * d];
        for i in 0..n {
            let row = set.row(i);
            for f in 0..d {
                codes[f * n + i] = binner.bin_value(f, row[f]);
            }
        }
        BinnedData { binner, codes, n, d }
    }

    /// Bin code of sample `i`, feature `f`.
    #[inline]
    pub fn code(&self, f: usize, i: usize) -> u8 {
        self.codes[f * self.n + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::DimmId;
    use mfp_dram::time::SimTime;

    fn tiny_set(values: &[&[f32]]) -> SampleSet {
        let mut s = SampleSet::new();
        s.schema = (0..values[0].len()).map(|i| format!("f{i}")).collect();
        for (i, row) in values.iter().enumerate() {
            s.push(
                row.to_vec(),
                i % 2 == 0,
                DimmId::new(i as u32, 0),
                SimTime::from_secs(i as u64),
            );
        }
        s
    }

    #[test]
    fn few_distinct_values_get_exact_bins() {
        let s = tiny_set(&[&[0.0, 1.0], &[1.0, 1.0], &[0.0, 2.0], &[1.0, 3.0]]);
        let b = Binner::fit(&s, 64);
        assert_eq!(b.bins(0), 2);
        assert_eq!(b.bins(1), 3);
        assert_eq!(b.bin_value(0, 0.0), 0);
        assert_eq!(b.bin_value(0, 1.0), 1);
    }

    #[test]
    fn binning_is_monotone() {
        let rows: Vec<Vec<f32>> = (0..500).map(|i| vec![(i as f32).sin() * 10.0]).collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let s = tiny_set(&refs);
        let b = Binner::fit(&s, 32);
        let mut vals: Vec<f32> = rows.iter().map(|r| r[0]).collect();
        vals.sort_by(|a, c| a.partial_cmp(c).unwrap());
        let bins: Vec<u8> = vals.iter().map(|&v| b.bin_value(0, v)).collect();
        assert!(bins.windows(2).all(|w| w[0] <= w[1]), "bins must be monotone");
        assert!(*bins.last().unwrap() as usize >= 20, "should use many bins");
    }

    #[test]
    fn out_of_range_values_clamp() {
        let s = tiny_set(&[&[0.0], &[1.0], &[2.0]]);
        let b = Binner::fit(&s, 8);
        assert_eq!(b.bin_value(0, -100.0), 0);
        assert_eq!(b.bin_value(0, 100.0), (b.bins(0) - 1) as u8);
    }

    #[test]
    fn threshold_consistent_with_binning() {
        let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let s = tiny_set(&refs);
        let b = Binner::fit(&s, 16);
        for v in [3.0f32, 42.0, 97.0] {
            let bin = b.bin_value(0, v);
            let th = b.threshold(0, bin);
            assert!(v <= th, "value {v} must be <= its bin threshold {th}");
        }
    }

    #[test]
    fn binned_data_layout() {
        let s = tiny_set(&[&[0.0, 5.0], &[1.0, 6.0], &[2.0, 7.0]]);
        let bd = BinnedData::from_samples(&s, 8);
        assert_eq!((bd.n, bd.d), (3, 2));
        for i in 0..3 {
            assert_eq!(bd.code(0, i), bd.binner.bin_value(0, s.row(i)[0]));
            assert_eq!(bd.code(1, i), bd.binner.bin_value(1, s.row(i)[1]));
        }
    }
}
