//! The rule-based "Risky CE Pattern" baseline, reproducing Li et al.
//! (SC'22) \[7\] in the feature space of this workspace.
//!
//! The original work mined manufacturer-specific error-bit patterns on
//! Intel Skylake / Cascade Lake (Purley): a DIMM becomes *risky* — and an
//! imminent-UE alarm is raised — once a CE exhibits a risky bit pattern
//! (multiple error DQs and beats with characteristic spacing). The paper
//! under reproduction uses it as the prior-art baseline on Purley and
//! notes there is *no* dedicated predictor for Whitley or the K920 (the
//! `X` entries in Table II).

use mfp_features::extract::feature_names;
use mfp_features::dataset::SampleSet;
use serde::{Deserialize, Serialize};

/// Rule thresholds of the risky-pattern indicator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskyCeParams {
    /// Minimum "complex" CEs (>= 2 DQs and >= 2 beats) in the window.
    pub min_complex: f32,
    /// Require at least one interval-4 beat pattern.
    pub require_interval4: bool,
    /// Minimum distinct rows in the window (fault spread).
    pub min_rows: f32,
}

impl Default for RiskyCeParams {
    fn default() -> Self {
        RiskyCeParams {
            min_complex: 1.0,
            require_interval4: true,
            min_rows: 1.0,
        }
    }
}

/// The trained (index-resolved) baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskyCePattern {
    params: RiskyCeParams,
    idx_complex: usize,
    idx_interval4: usize,
    idx_rows: usize,
    idx_u_dq: usize,
    idx_u_int4: usize,
}

impl RiskyCePattern {
    /// Resolves the rule against the standard feature schema.
    pub fn new(params: RiskyCeParams) -> Self {
        let names = feature_names();
        let find = |n: &str| {
            names
                .iter()
                .position(|x| x == n)
                .unwrap_or_else(|| panic!("schema is missing {n}"))
        };
        RiskyCePattern {
            params,
            idx_complex: find("eb_complex"),
            idx_interval4: find("eb_interval4"),
            idx_rows: find("rows_5d"),
            idx_u_dq: find("ebu_dev_dq"),
            idx_u_int4: find("ebu_dev_interval4"),
        }
    }

    /// Rule score: 1.0 when the observation window shows a risky pattern —
    /// either within one CE or accumulated across the window's error bits
    /// within one device (Li et al. mine both forms).
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        let rows_ok = row[self.idx_rows] >= self.params.min_rows;
        let per_event = row[self.idx_complex] >= self.params.min_complex
            && (!self.params.require_interval4 || row[self.idx_interval4] >= 1.0);
        let accumulated = row[self.idx_u_dq] >= 2.0
            && (!self.params.require_interval4 || row[self.idx_u_int4] >= 1.0);
        if rows_ok && (per_event || accumulated) {
            1.0
        } else {
            0.0
        }
    }

    /// Scores a whole sample set.
    pub fn predict_set(&self, set: &SampleSet) -> Vec<f32> {
        (0..set.len()).map(|i| self.predict_proba(set.row(i))).collect()
    }
}

impl Default for RiskyCePattern {
    fn default() -> Self {
        RiskyCePattern::new(RiskyCeParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_features::extract::FEATURE_DIM;

    fn row_with(complex: f32, interval4: f32, rows: f32) -> Vec<f32> {
        let names = feature_names();
        let mut row = vec![0.0f32; FEATURE_DIM];
        row[names.iter().position(|n| n == "eb_complex").unwrap()] = complex;
        row[names.iter().position(|n| n == "eb_interval4").unwrap()] = interval4;
        row[names.iter().position(|n| n == "rows_5d").unwrap()] = rows;
        // Accumulated footprint mirrors the per-event evidence.
        row[names.iter().position(|n| n == "ebu_dev_dq").unwrap()] =
            if complex >= 1.0 { 2.0 } else { 0.0 };
        row[names.iter().position(|n| n == "ebu_dev_interval4").unwrap()] =
            if interval4 >= 1.0 { 1.0 } else { 0.0 };
        row
    }

    #[test]
    fn risky_pattern_fires() {
        let m = RiskyCePattern::default();
        assert_eq!(m.predict_proba(&row_with(2.0, 1.0, 3.0)), 1.0);
    }

    #[test]
    fn benign_patterns_do_not_fire() {
        let m = RiskyCePattern::default();
        assert_eq!(m.predict_proba(&row_with(0.0, 0.0, 5.0)), 0.0);
        assert_eq!(m.predict_proba(&row_with(2.0, 0.0, 5.0)), 0.0);
        assert_eq!(m.predict_proba(&row_with(2.0, 1.0, 0.0)), 0.0);
    }

    #[test]
    fn interval4_requirement_is_optional() {
        let m = RiskyCePattern::new(RiskyCeParams {
            require_interval4: false,
            ..Default::default()
        });
        assert_eq!(m.predict_proba(&row_with(1.0, 0.0, 1.0)), 1.0);
    }
}
