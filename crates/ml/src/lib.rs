//! # mfp-ml
//!
//! From-scratch tabular machine learning for memory-failure prediction —
//! the algorithms of the paper's Table II:
//!
//! * [`risky_ce`] — the rule-based *Risky CE Pattern* baseline \[7\].
//! * [`forest`] — Random Forest on histogram-binned features ([`binning`],
//!   [`tree`]).
//! * [`gbdt`] — a LightGBM-style leaf-wise histogram GBDT with GOSS and
//!   early stopping.
//! * [`ft`] — an FT-Transformer on the `mfp-tensor` kernels.
//! * [`metrics`] — precision / recall / F1 / VIRR, threshold selection and
//!   DIMM-level aggregation.
//! * [`model`] — one enum to train and score any of the above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod forest;
pub mod ft;
pub mod gbdt;
pub mod metrics;
pub mod model;
pub mod risky_ce;
pub mod tree;
pub mod tuning;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::binning::{BinnedData, Binner};
    pub use crate::forest::{ForestParams, RandomForest};
    pub use crate::ft::{FtParams, FtTransformer};
    pub use crate::gbdt::{Gbdt, GbdtParams};
    pub use crate::metrics::{
        best_dimm_f1_threshold, best_f1_threshold, best_vote_threshold, dimm_level,
        dimm_level_vote, evaluate_dimm_level, pr_curve, roc_auc, Confusion, Evaluation, PrPoint,
    };
    pub use crate::model::{Algorithm, Model};
    pub use crate::risky_ce::{RiskyCeParams, RiskyCePattern};
    pub use crate::tree::{DecisionTree, TreeParams};
    pub use crate::tuning::{default_forest_grid, default_gbdt_grid, grid_search, Candidate};
}
