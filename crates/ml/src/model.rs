//! A uniform interface over all predictors, so experiments and the MLOps
//! layer can treat Random Forest, GBDT, FT-Transformer and the rule-based
//! baseline interchangeably.

use crate::forest::{ForestParams, RandomForest};
use crate::ft::{FtParams, FtTransformer};
use crate::gbdt::{Gbdt, GbdtParams};
use crate::risky_ce::RiskyCePattern;
use mfp_features::dataset::SampleSet;
use serde::{Deserialize, Serialize};

/// The algorithms compared in the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Rule-based Risky CE Pattern baseline \[7\].
    RiskyCePattern,
    /// Random Forest.
    RandomForest,
    /// LightGBM-style histogram GBDT.
    LightGbm,
    /// FT-Transformer.
    FtTransformer,
}

impl Algorithm {
    /// All algorithms in Table II row order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::RiskyCePattern,
        Algorithm::RandomForest,
        Algorithm::LightGbm,
        Algorithm::FtTransformer,
    ];

    /// Table II row label.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::RiskyCePattern => "Risky CE Pattern [7]",
            Algorithm::RandomForest => "Random forest",
            Algorithm::LightGbm => "LightGBM",
            Algorithm::FtTransformer => "FT-Transformer",
        }
    }

    /// Short machine-friendly identifier (telemetry labels, file names).
    pub fn slug(self) -> &'static str {
        match self {
            Algorithm::RiskyCePattern => "risky_ce",
            Algorithm::RandomForest => "random_forest",
            Algorithm::LightGbm => "lightgbm",
            Algorithm::FtTransformer => "ft_transformer",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A trained failure-prediction model of any algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Model {
    /// Rule-based baseline.
    RiskyCe(RiskyCePattern),
    /// Random Forest.
    Forest(RandomForest),
    /// GBDT.
    Gbdt(Gbdt),
    /// FT-Transformer.
    Ft(Box<FtTransformer>),
}

impl Model {
    /// Trains `algorithm` with default hyper-parameters on `train`.
    pub fn train(algorithm: Algorithm, train: &SampleSet) -> Model {
        Model::train_seeded(algorithm, train, 17)
    }

    /// Trains with an explicit seed.
    pub fn train_seeded(algorithm: Algorithm, train: &SampleSet, seed: u64) -> Model {
        let labels: &[(&str, &str)] = &[("algo", algorithm.slug())];
        let span = mfp_obs::latency("ml_train_seconds", labels).time();
        let model = Self::train_seeded_inner(algorithm, train, seed);
        span.stop();
        mfp_obs::counter("ml_train_runs", labels).incr();
        mfp_obs::counter("ml_train_rows", labels).add(train.len() as u64);
        // Tree ensembles report their fitted size (early stopping can cut
        // GBDT rounds short); the transformer runs its configured epochs.
        let iterations = match &model {
            Model::RiskyCe(_) => 0,
            Model::Forest(m) => m.n_trees() as u64,
            Model::Gbdt(m) => m.n_trees() as u64,
            Model::Ft(_) => FtParams::default().epochs as u64,
        };
        mfp_obs::counter("ml_train_iterations", labels).add(iterations);
        model
    }

    fn train_seeded_inner(algorithm: Algorithm, train: &SampleSet, seed: u64) -> Model {
        match algorithm {
            Algorithm::RiskyCePattern => Model::RiskyCe(RiskyCePattern::default()),
            Algorithm::RandomForest => Model::Forest(RandomForest::fit(
                train,
                &ForestParams {
                    seed,
                    ..Default::default()
                },
            )),
            Algorithm::LightGbm => Model::Gbdt(Gbdt::fit(
                train,
                &GbdtParams {
                    seed,
                    ..Default::default()
                },
            )),
            Algorithm::FtTransformer => Model::Ft(Box::new(FtTransformer::fit(
                train,
                &FtParams {
                    seed,
                    ..Default::default()
                },
            ))),
        }
    }

    /// The algorithm this model implements.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            Model::RiskyCe(_) => Algorithm::RiskyCePattern,
            Model::Forest(_) => Algorithm::RandomForest,
            Model::Gbdt(_) => Algorithm::LightGbm,
            Model::Ft(_) => Algorithm::FtTransformer,
        }
    }

    /// Positive-class probability for one feature row.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        match self {
            Model::RiskyCe(m) => m.predict_proba(row),
            Model::Forest(m) => m.predict_proba(row),
            Model::Gbdt(m) => m.predict_proba(row),
            Model::Ft(m) => m.predict_proba(row),
        }
    }

    /// Normalized feature importance, when the algorithm provides one
    /// (tree ensembles do; the rule baseline and FT-Transformer do not).
    pub fn feature_importance(&self) -> Option<&[f64]> {
        match self {
            Model::Forest(m) => Some(m.feature_importance()),
            Model::Gbdt(m) => Some(m.feature_importance()),
            _ => None,
        }
    }

    /// Scores every sample of a set.
    pub fn predict_set(&self, set: &SampleSet) -> Vec<f32> {
        let labels: &[(&str, &str)] = &[("algo", self.algorithm().slug())];
        let span = mfp_obs::latency("ml_predict_seconds", labels).time();
        let scores = match self {
            Model::Ft(m) => {
                let rows: Vec<&[f32]> = (0..set.len()).map(|i| set.row(i)).collect();
                m.predict_proba_batch(&rows)
            }
            _ => (0..set.len()).map(|i| self.predict_proba(set.row(i))).collect(),
        };
        span.stop();
        mfp_obs::counter("ml_rows_scored", labels).add(scores.len() as u64);
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::DimmId;
    use mfp_dram::time::SimTime;
    use mfp_features::extract::FEATURE_DIM;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn schema_set(seed: u64, n: usize) -> SampleSet {
        // Standard-schema set where label depends on eb_complex.
        let mut s = SampleSet::new();
        let idx = s.schema.iter().position(|x| x == "eb_complex").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let mut row = vec![0.0f32; FEATURE_DIM];
            for v in row.iter_mut() {
                *v = rng.random::<f32>();
            }
            let y = i % 3 == 0;
            row[idx] = if y { 5.0 } else { 0.0 };
            s.push(row, y, DimmId::new(i as u32, 0), SimTime::from_secs(i as u64));
        }
        s
    }

    #[test]
    fn all_algorithms_train_and_score() {
        let train = schema_set(1, 200);
        for algo in Algorithm::ALL {
            let model = Model::train(algo, &train);
            assert_eq!(model.algorithm(), algo);
            let scores = model.predict_set(&train);
            assert_eq!(scores.len(), train.len());
            assert!(scores.iter().all(|&p| (0.0..=1.0).contains(&p)), "{algo}");
        }
    }

    #[test]
    fn learners_separate_easy_signal() {
        let train = schema_set(2, 300);
        let test = schema_set(3, 100);
        for algo in [Algorithm::RandomForest, Algorithm::LightGbm] {
            let model = Model::train(algo, &train);
            let scores = model.predict_set(&test);
            let correct = scores
                .iter()
                .zip(&test.labels)
                .filter(|(&p, &y)| (p > 0.5) == y)
                .count();
            assert!(
                correct as f64 / test.len() as f64 > 0.95,
                "{algo}: {correct}/100"
            );
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Algorithm::LightGbm.label(), "LightGBM");
        assert_eq!(Algorithm::ALL.len(), 4);
        assert_eq!(Algorithm::ALL[0].to_string(), "Risky CE Pattern [7]");
    }
}
