//! Random Forest: bagged CART trees with feature subsampling, trained in
//! parallel with crossbeam scoped threads.

use crate::binning::BinnedData;
use crate::tree::{DecisionTree, TreeParams};
use mfp_features::dataset::SampleSet;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random Forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters (feature subsample defaults to sqrt(d) when 0).
    pub tree: TreeParams,
    /// Histogram bins.
    pub max_bins: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 150,
            tree: TreeParams {
                max_depth: 8,
                min_samples_leaf: 15,
                feature_subsample: 0,
            },
            max_bins: 64,
            seed: 7,
        }
    }
}

/// A trained Random Forest classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    params: ForestParams,
    importance: Vec<f64>,
}

impl RandomForest {
    /// Trains a forest on the sample set.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(train: &SampleSet, params: &ForestParams) -> Self {
        assert!(!train.is_empty(), "empty training set");
        let data = BinnedData::from_samples(train, params.max_bins);
        let labels = &train.labels;
        let n = train.len();
        let mut tree_params = params.tree;
        if tree_params.feature_subsample == 0 {
            tree_params.feature_subsample = (train.dim() as f64).sqrt().ceil() as usize;
        }

        let workers = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(4)
            .min(params.n_trees.max(1));
        let mut trees: Vec<(usize, DecisionTree)> = Vec::with_capacity(params.n_trees);
        crossbeam::scope(|s| {
            let data = &data;
            let mut handles = Vec::new();
            for w in 0..workers {
                let seed = params.seed;
                let tree_params = tree_params;
                handles.push(s.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut importance = vec![0.0f64; data.d];
                    let mut t = w;
                    while t < params.n_trees {
                        let mut rng = StdRng::seed_from_u64(seed ^ ((t as u64 + 1) * 0x9E37));
                        // Bootstrap sample.
                        let indices: Vec<u32> =
                            (0..n).map(|_| rng.random_range(0..n) as u32).collect();
                        let tree = DecisionTree::fit_with_importance(
                            data,
                            labels,
                            &indices,
                            &tree_params,
                            &mut rng,
                            &mut importance,
                        );
                        out.push((t, tree));
                        t += workers;
                    }
                    (out, importance)
                }));
            }
            let mut importance = vec![0.0f64; train.dim()];
            for h in handles {
                let (part, imp) = h.join().expect("forest worker panicked");
                trees.extend(part);
                for (a, b) in importance.iter_mut().zip(imp) {
                    *a += b;
                }
            }
            trees.sort_by_key(|&(t, _)| t);
            let total: f64 = importance.iter().sum();
            if total > 0.0 {
                importance.iter_mut().for_each(|v| *v /= total);
            }
            RandomForest {
                trees: trees.into_iter().map(|(_, t)| t).collect(),
                params: *params,
                importance,
            }
        })
        .expect("crossbeam scope")
    }

    /// Normalized Gini-gain feature importance (sums to 1).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Mean positive-class probability across trees.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        let sum: f32 = self.trees.iter().map(|t| t.predict_proba(row)).sum();
        sum / self.trees.len().max(1) as f32
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::DimmId;
    use mfp_dram::time::SimTime;

    fn noisy_set(seed: u64, n: usize) -> SampleSet {
        // y = (x0 + x1 > 1) with a noisy third feature.
        let mut s = SampleSet::new();
        s.schema = vec!["a".into(), "b".into(), "noise".into()];
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let x0: f32 = rng.random();
            let x1: f32 = rng.random();
            let noise: f32 = rng.random();
            s.push(
                vec![x0, x1, noise],
                x0 + x1 > 1.0,
                DimmId::new(i as u32, 0),
                SimTime::from_secs(i as u64),
            );
        }
        s
    }

    #[test]
    fn forest_beats_chance_on_linear_boundary() {
        let train = noisy_set(1, 600);
        let test = noisy_set(2, 300);
        let params = ForestParams {
            n_trees: 30,
            ..Default::default()
        };
        let rf = RandomForest::fit(&train, &params);
        let mut correct = 0;
        for i in 0..test.len() {
            let p = rf.predict_proba(test.row(i));
            if (p > 0.5) == test.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let train = noisy_set(3, 200);
        let params = ForestParams {
            n_trees: 8,
            ..Default::default()
        };
        let a = RandomForest::fit(&train, &params);
        let b = RandomForest::fit(&train, &params);
        let row = train.row(0);
        assert_eq!(a.predict_proba(row), b.predict_proba(row));
        assert_eq!(a.n_trees(), 8);
    }

    #[test]
    fn probabilities_bounded() {
        let train = noisy_set(4, 100);
        let rf = RandomForest::fit(
            &train,
            &ForestParams {
                n_trees: 5,
                ..Default::default()
            },
        );
        for i in 0..train.len() {
            let p = rf.predict_proba(train.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
