//! FT-Transformer for tabular data (Gorishniy et al., NeurIPS 2021 \[39\]).
//!
//! Each numeric feature is tokenized into an embedding (`x_j * W_j + b_j`),
//! a `[CLS]` token is prepended, and the token sequence passes through
//! pre-norm transformer blocks (multi-head self-attention + feed-forward).
//! The `[CLS]` representation feeds a layer-normed linear head producing
//! one logit; training uses class-weighted BCE with Adam — all on the
//! `mfp-tensor` kernels, gradients hand-derived.

use mfp_features::dataset::SampleSet;
use mfp_tensor::matrix::Matrix;
use mfp_tensor::nn::{init_uniform, Gelu, LayerNorm, Linear, MultiHeadAttention, Param};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// FT-Transformer hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FtParams {
    /// Token embedding width.
    pub embed_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer blocks.
    pub blocks: usize,
    /// Feed-forward hidden width.
    pub ffn_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Positive-class weight (0 = balance automatically, capped).
    pub pos_weight: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FtParams {
    fn default() -> Self {
        FtParams {
            embed_dim: 8,
            heads: 2,
            blocks: 1,
            ffn_dim: 16,
            epochs: 4,
            batch_size: 256,
            lr: 3e-3,
            pos_weight: 0.0,
            seed: 13,
        }
    }
}

/// One pre-norm transformer block.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Block {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff1: Linear,
    act: Gelu,
    ff2: Linear,
}

impl Block {
    fn new(p: &FtParams, seq_len: usize, seed: u64) -> Self {
        Block {
            ln1: LayerNorm::new(p.embed_dim),
            attn: MultiHeadAttention::new(p.embed_dim, p.heads, seq_len, seed),
            ln2: LayerNorm::new(p.embed_dim),
            ff1: Linear::new(p.embed_dim, p.ffn_dim, seed ^ 0xF1),
            act: Gelu::new(),
            ff2: Linear::new(p.ffn_dim, p.embed_dim, seed ^ 0xF2),
        }
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        // x + Attn(LN(x))
        let h = self.ln1.forward(x);
        let a = self.attn.forward(&h);
        let mut y = x.clone();
        y.add_assign(&a);
        // y + FFN(LN(y))
        let h2 = self.ln2.forward(&y);
        let f = self.ff2.forward(&self.act.forward(&self.ff1.forward(&h2)));
        let mut out = y;
        out.add_assign(&f);
        out
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        // out = y + FFN(LN2(y))
        let df = self
            .ln2
            .backward(&self.ff1.backward(&self.act.backward(&self.ff2.backward(dy))));
        let mut d_y = dy.clone();
        d_y.add_assign(&df);
        // y = x + Attn(LN1(x))
        let da = self.ln1.backward(&self.attn.backward(&d_y));
        let mut dx = d_y;
        dx.add_assign(&da);
        dx
    }

    fn for_each_param(&mut self, f: &mut impl FnMut(&mut Param)) {
        self.ln1.for_each_param(f);
        self.attn.for_each_param(f);
        self.ln2.for_each_param(f);
        self.ff1.for_each_param(f);
        self.ff2.for_each_param(f);
    }
}

/// The FT-Transformer classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FtTransformer {
    params: FtParams,
    n_features: usize,
    /// Per-feature embedding weights: `n_features x embed_dim`.
    token_w: Param,
    /// Per-feature embedding biases: `n_features x embed_dim`.
    token_b: Param,
    /// The `[CLS]` token embedding.
    cls: Param,
    blocks: Vec<Block>,
    head_ln: LayerNorm,
    head: Linear,
    /// Feature standardization (means, stds) from the training set.
    means: Vec<f32>,
    stds: Vec<f32>,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl FtTransformer {
    /// Creates an untrained model for `n_features` inputs.
    pub fn new(n_features: usize, params: &FtParams) -> Self {
        let seq_len = n_features + 1;
        let e = params.embed_dim;
        let limit = (1.0 / e as f32).sqrt();
        FtTransformer {
            params: *params,
            n_features,
            token_w: Param::new(init_uniform(n_features * e, limit, params.seed ^ 0xA)),
            token_b: Param::new(init_uniform(n_features * e, limit, params.seed ^ 0xB)),
            cls: Param::new(init_uniform(e, limit, params.seed ^ 0xC)),
            blocks: (0..params.blocks)
                .map(|i| Block::new(params, seq_len, params.seed ^ ((i as u64 + 1) << 8)))
                .collect(),
            head_ln: LayerNorm::new(e),
            head: Linear::new(e, 1, params.seed ^ 0xD),
            means: vec![0.0; n_features],
            stds: vec![1.0; n_features],
        }
    }

    fn seq_len(&self) -> usize {
        self.n_features + 1
    }

    /// Tokenizes a batch of standardized rows into a
    /// `(batch * seq_len) x embed_dim` matrix.
    #[allow(clippy::needless_range_loop)] // embedding tables indexed in parallel
    fn tokenize(&self, rows: &[&[f32]]) -> Matrix {
        let e = self.params.embed_dim;
        let s = self.seq_len();
        let mut x = Matrix::zeros(rows.len() * s, e);
        for (b, row) in rows.iter().enumerate() {
            let r0 = b * s;
            x.row_mut(r0).copy_from_slice(&self.cls.data);
            for (j, &raw) in row.iter().enumerate() {
                let v = (raw - self.means[j]) / self.stds[j];
                let out = x.row_mut(r0 + 1 + j);
                for d in 0..e {
                    out[d] = v * self.token_w.data[j * e + d] + self.token_b.data[j * e + d];
                }
            }
        }
        x
    }

    /// Forward pass to logits; also returns the tokenized input (for the
    /// backward pass) when `training`.
    fn forward_batch(&mut self, rows: &[&[f32]]) -> (Vec<f32>, Matrix) {
        let s = self.seq_len();
        let x0 = self.tokenize(rows);
        let mut x = x0.clone();
        for block in &mut self.blocks {
            x = block.forward(&x);
        }
        // Gather CLS rows.
        let e = self.params.embed_dim;
        let mut cls = Matrix::zeros(rows.len(), e);
        for b in 0..rows.len() {
            cls.row_mut(b).copy_from_slice(x.row(b * s));
        }
        let h = self.head_ln.forward(&cls);
        let logits_m = self.head.forward(&h);
        let logits = (0..rows.len()).map(|b| logits_m.get(b, 0)).collect();
        (logits, x0)
    }

    /// Backward pass from per-sample dLogit.
    #[allow(clippy::needless_range_loop)] // embedding tables indexed in parallel
    fn backward_batch(&mut self, rows_len: usize, d_logits: &[f32], std_rows: &[&[f32]]) {
        let s = self.seq_len();
        let e = self.params.embed_dim;
        let mut dl = Matrix::zeros(rows_len, 1);
        for b in 0..rows_len {
            dl.set(b, 0, d_logits[b]);
        }
        let d_cls_rows = self.head_ln.backward(&self.head.backward(&dl));
        // Scatter CLS grads back into the sequence grad.
        let mut dx = Matrix::zeros(rows_len * s, e);
        for b in 0..rows_len {
            dx.row_mut(b * s).copy_from_slice(d_cls_rows.row(b));
        }
        for block in self.blocks.iter_mut().rev() {
            dx = block.backward(&dx);
        }
        // Token embedding gradients.
        for (b, row) in std_rows.iter().enumerate() {
            let r0 = b * s;
            for d in 0..e {
                self.cls.grad[d] += dx.get(r0, d);
            }
            for (j, &raw) in row.iter().enumerate() {
                let v = (raw - self.means[j]) / self.stds[j];
                for d in 0..e {
                    let g = dx.get(r0 + 1 + j, d);
                    self.token_w.grad[j * e + d] += g * v;
                    self.token_b.grad[j * e + d] += g;
                }
            }
        }
    }

    fn for_each_param(&mut self, f: &mut impl FnMut(&mut Param)) {
        f(&mut self.token_w);
        f(&mut self.token_b);
        f(&mut self.cls);
        for b in &mut self.blocks {
            b.for_each_param(f);
        }
        self.head_ln.for_each_param(f);
        self.head.for_each_param(f);
    }

    /// Trains on the sample set.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or its dimensionality differs from the
    /// model's.
    pub fn fit(train: &SampleSet, params: &FtParams) -> Self {
        assert!(!train.is_empty(), "empty training set");
        let d = train.dim();
        let mut model = FtTransformer::new(d, params);

        // Standardization statistics.
        let n = train.len();
        for j in 0..d {
            let mut mean = 0.0f64;
            for i in 0..n {
                mean += train.row(i)[j] as f64;
            }
            mean /= n as f64;
            let mut var = 0.0f64;
            for i in 0..n {
                let v = train.row(i)[j] as f64 - mean;
                var += v * v;
            }
            model.means[j] = mean as f32;
            model.stds[j] = ((var / n as f64).sqrt() as f32).max(1e-4);
        }

        let pos = train.labels.iter().filter(|&&l| l).count().max(1);
        let neg = (n - pos).max(1);
        let pos_weight = if params.pos_weight > 0.0 {
            params.pos_weight
        } else {
            (neg as f32 / pos as f32).clamp(1.0, 30.0)
        };

        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut step = 0u32;
        for _epoch in 0..params.epochs {
            for k in (1..n).rev() {
                let j = rng.random_range(0..=k);
                order.swap(k, j);
            }
            for chunk in order.chunks(params.batch_size) {
                let rows: Vec<&[f32]> = chunk.iter().map(|&i| train.row(i)).collect();
                let (logits, _x0) = model.forward_batch(&rows);
                // BCE-with-logits gradient: sigmoid(z) - y, class-weighted.
                let mut d_logits = Vec::with_capacity(rows.len());
                for (bi, &i) in chunk.iter().enumerate() {
                    let y = train.labels[i] as u8 as f32;
                    let w = if train.labels[i] { pos_weight } else { 1.0 };
                    d_logits.push(w * (sigmoid(logits[bi]) - y) / rows.len() as f32);
                }
                model.backward_batch(rows.len(), &d_logits, &rows);
                step += 1;
                let lr = params.lr;
                model.for_each_param(&mut |p: &mut Param| {
                    p.adam_step(lr, 0.9, 0.999, 1e-8, step);
                    p.zero_grad();
                });
            }
        }
        model
    }

    /// Positive-class probability for a raw feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the training dimensionality.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        // Inference clone keeps `&self` semantics for the shared caches.
        let mut m = self.clone();
        let (logits, _) = m.forward_batch(&[row]);
        sigmoid(logits[0])
    }

    /// Batched probabilities (far faster than repeated `predict_proba`).
    pub fn predict_proba_batch(&self, rows: &[&[f32]]) -> Vec<f32> {
        let mut m = self.clone();
        let mut out = Vec::with_capacity(rows.len());
        for chunk in rows.chunks(self.params.batch_size.max(1)) {
            let (logits, _) = m.forward_batch(chunk);
            out.extend(logits.into_iter().map(sigmoid));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::DimmId;
    use mfp_dram::time::SimTime;

    fn blob_set(seed: u64, n: usize) -> SampleSet {
        // Two Gaussian-ish blobs, linearly separable with margin.
        let mut s = SampleSet::new();
        s.schema = (0..4).map(|i| format!("f{i}")).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let y = i % 2 == 0;
            let center = if y { 1.5 } else { -1.5 };
            let row: Vec<f32> = (0..4)
                .map(|_| center + (rng.random::<f32>() - 0.5))
                .collect();
            s.push(row, y, DimmId::new(i as u32, 0), SimTime::from_secs(i as u64));
        }
        s
    }

    #[test]
    fn learns_separable_blobs() {
        let train = blob_set(1, 400);
        let test = blob_set(2, 100);
        let params = FtParams {
            epochs: 30,
            batch_size: 64,
            ..Default::default()
        };
        let model = FtTransformer::fit(&train, &params);
        let rows: Vec<&[f32]> = (0..test.len()).map(|i| test.row(i)).collect();
        let probs = model.predict_proba_batch(&rows);
        let correct = probs
            .iter()
            .zip(&test.labels)
            .filter(|(&p, &y)| (p > 0.5) == y)
            .count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let train = blob_set(3, 100);
        let params = FtParams {
            epochs: 1,
            ..Default::default()
        };
        let a = FtTransformer::fit(&train, &params);
        let b = FtTransformer::fit(&train, &params);
        assert_eq!(a.predict_proba(train.row(0)), b.predict_proba(train.row(0)));
    }

    #[test]
    fn probabilities_bounded_and_batch_consistent() {
        let train = blob_set(4, 120);
        let params = FtParams {
            epochs: 1,
            ..Default::default()
        };
        let model = FtTransformer::fit(&train, &params);
        let rows: Vec<&[f32]> = (0..5).map(|i| train.row(i)).collect();
        let batch = model.predict_proba_batch(&rows);
        for (i, &p) in batch.iter().enumerate() {
            assert!((0.0..=1.0).contains(&p));
            let single = model.predict_proba(rows[i]);
            assert!((single - p).abs() < 1e-5, "batch/single mismatch");
        }
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn rejects_wrong_width() {
        let train = blob_set(5, 50);
        let model = FtTransformer::fit(
            &train,
            &FtParams {
                epochs: 1,
                ..Default::default()
            },
        );
        let _ = model.predict_proba(&[1.0, 2.0]);
    }
}
