//! Hyper-parameter search — the "AutoML" step of the paper's ML
//! Deployment phase (§VII): candidates are trained on the fit split and
//! ranked by DIMM-level F1 on a validation split, with the alarm-vote
//! threshold tuned per candidate.

use crate::forest::ForestParams;
use crate::gbdt::GbdtParams;
use crate::metrics::{best_vote_threshold, dimm_level_vote, Confusion, Evaluation};
use crate::model::{Algorithm, Model};
use crate::tree::TreeParams;
use mfp_features::dataset::SampleSet;
use serde::{Deserialize, Serialize};

/// A candidate configuration for the search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Candidate {
    /// GBDT hyper-parameters.
    Gbdt(GbdtParams),
    /// Random-Forest hyper-parameters.
    Forest(ForestParams),
}

impl Candidate {
    /// The algorithm family of the candidate.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            Candidate::Gbdt(_) => Algorithm::LightGbm,
            Candidate::Forest(_) => Algorithm::RandomForest,
        }
    }

    /// Trains the candidate.
    pub fn train(&self, train: &SampleSet) -> Model {
        match self {
            Candidate::Gbdt(p) => Model::Gbdt(crate::gbdt::Gbdt::fit(train, p)),
            Candidate::Forest(p) => Model::Forest(crate::forest::RandomForest::fit(train, p)),
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct TunedCandidate {
    /// The configuration.
    pub candidate: Candidate,
    /// Its validation evaluation (threshold already tuned).
    pub evaluation: Evaluation,
    /// The trained model.
    pub model: Model,
}

/// A small default grid around the shipped GBDT defaults.
pub fn default_gbdt_grid(seed: u64) -> Vec<Candidate> {
    let base = GbdtParams {
        seed,
        ..Default::default()
    };
    let mut grid = Vec::new();
    for &max_leaves in &[7usize, 15, 31] {
        for &learning_rate in &[0.05f32, 0.1] {
            grid.push(Candidate::Gbdt(GbdtParams {
                max_leaves,
                learning_rate,
                ..base
            }));
        }
    }
    grid
}

/// A small default grid around the shipped Random-Forest defaults.
pub fn default_forest_grid(seed: u64) -> Vec<Candidate> {
    let mut grid = Vec::new();
    for &max_depth in &[6usize, 8, 12] {
        grid.push(Candidate::Forest(ForestParams {
            seed,
            tree: TreeParams {
                max_depth,
                ..ForestParams::default().tree
            },
            ..Default::default()
        }));
    }
    grid
}

/// Trains every candidate and returns them ranked by validation F1
/// (best first).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn grid_search(
    candidates: &[Candidate],
    train: &SampleSet,
    validation: &SampleSet,
    votes: usize,
) -> Vec<TunedCandidate> {
    assert!(!candidates.is_empty(), "empty candidate grid");
    let mut out: Vec<TunedCandidate> = candidates
        .iter()
        .map(|&candidate| {
            let model = candidate.train(train);
            let scores = model.predict_set(validation);
            let threshold = best_vote_threshold(validation, &scores, votes);
            let (y_true, y_pred) = dimm_level_vote(validation, &scores, threshold, votes);
            let evaluation = Evaluation::from_confusion(
                Confusion::from_predictions(&y_true, &y_pred),
                threshold,
            );
            TunedCandidate {
                candidate,
                evaluation,
                model,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.evaluation
            .f1
            .partial_cmp(&a.evaluation.f1)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::DimmId;
    use mfp_dram::time::SimTime;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn set(seed: u64, n: usize) -> SampleSet {
        let mut s = SampleSet::new();
        s.schema = vec!["a".into(), "b".into()];
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let a: f32 = rng.random();
            let b: f32 = rng.random();
            s.push(
                vec![a, b],
                a + b > 1.2,
                DimmId::new((i / 4) as u32, 0),
                SimTime::from_secs(i as u64 * 60),
            );
        }
        s
    }

    #[test]
    fn grid_search_ranks_by_f1() {
        let train = set(1, 400);
        let val = set(2, 200);
        let results = grid_search(&default_gbdt_grid(7), &train, &val, 1);
        assert_eq!(results.len(), 6);
        for w in results.windows(2) {
            assert!(w[0].evaluation.f1 >= w[1].evaluation.f1);
        }
        assert!(results[0].evaluation.f1 > 0.5, "{}", results[0].evaluation.f1);
    }

    #[test]
    fn mixed_grids_work() {
        let train = set(3, 300);
        let val = set(4, 150);
        let mut grid = default_forest_grid(5);
        grid.extend(default_gbdt_grid(5).into_iter().take(2));
        let results = grid_search(&grid, &train, &val, 1);
        assert_eq!(results.len(), 5);
        // The winner's model family matches its candidate.
        assert_eq!(
            results[0].model.algorithm(),
            results[0].candidate.algorithm()
        );
    }

    #[test]
    #[should_panic(expected = "empty candidate grid")]
    fn empty_grid_panics() {
        let train = set(6, 50);
        let _ = grid_search(&[], &train, &train, 1);
    }
}
