//! Histogram-based gradient-boosted decision trees with leaf-wise growth —
//! a from-scratch "LightGBM-style" learner (Ke et al., 2017): quantile
//! binning, second-order logistic loss, leaf-wise best-gain growth,
//! optional GOSS sampling, class weighting, and early stopping on a
//! validation split.

use crate::binning::BinnedData;
use mfp_features::dataset::SampleSet;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// GBDT hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Maximum boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage.
    pub learning_rate: f32,
    /// Maximum leaves per tree (leaf-wise growth).
    pub max_leaves: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf weights.
    pub lambda: f64,
    /// Histogram bins.
    pub max_bins: usize,
    /// GOSS sampling `(top_fraction a, random_fraction b)`; `None` uses all
    /// rows every round.
    pub goss: Option<(f64, f64)>,
    /// Stop after this many rounds without validation improvement.
    pub early_stopping_rounds: usize,
    /// Fraction of training rows held out for early stopping.
    pub validation_fraction: f64,
    /// Positive-class weight (0 = balance automatically).
    pub pos_weight: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_rounds: 150,
            learning_rate: 0.07,
            max_leaves: 7,
            min_samples_leaf: 80,
            lambda: 10.0,
            max_bins: 64,
            goss: Some((0.2, 0.2)),
            early_stopping_rounds: 25,
            validation_fraction: 0.15,
            pos_weight: 0.0,
            seed: 11,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum RegNode {
    Leaf {
        value: f32,
    },
    Split {
        feature: u16,
        threshold: f32,
        cut: u8,
        left: u32,
        right: u32,
    },
}

/// One regression tree of the ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegTree {
    nodes: Vec<RegNode>,
}

impl RegTree {
    /// Leaf value for a raw feature row.
    pub fn predict(&self, row: &[f32]) -> f32 {
        let mut id = 0usize;
        loop {
            match &self.nodes[id] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    id = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Leaf value for a pre-binned sample.
    fn predict_binned(&self, data: &BinnedData, i: usize) -> f32 {
        let mut id = 0usize;
        loop {
            match &self.nodes[id] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split {
                    feature, cut, left, right, ..
                } => {
                    id = if data.code(*feature as usize, i) <= *cut {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, RegNode::Leaf { .. }))
            .count()
    }
}

/// A trained gradient-boosting classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    trees: Vec<RegTree>,
    base_score: f32,
    params: GbdtParams,
    importance: Vec<f64>,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Gbdt {
    /// Trains on the sample set.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(train: &SampleSet, params: &GbdtParams) -> Self {
        assert!(!train.is_empty(), "empty training set");
        let data = BinnedData::from_samples(train, params.max_bins);
        let n = train.len();
        let mut rng = StdRng::seed_from_u64(params.seed);

        // Early-stopping split: the *last* rows form the validation set.
        // Sample sets group rows by DIMM, so this holds out whole DIMMs —
        // a random row split would leak DIMM identity into the stopper.
        let order: Vec<u32> = (0..n as u32).collect();
        let n_valid = ((n as f64 * params.validation_fraction) as usize).min(n / 3);
        let (boost_idx, valid_idx) = order.split_at(n - n_valid);

        let pos = train.labels.iter().filter(|&&l| l).count().max(1);
        let neg = (n - pos).max(1);
        let pos_weight = if params.pos_weight > 0.0 {
            params.pos_weight
        } else {
            (neg as f32 / pos as f32).clamp(1.0, 8.0)
        };

        let p0 = (pos as f32 / n as f32).clamp(1e-4, 1.0 - 1e-4);
        let base_score = (p0 / (1.0 - p0)).ln();
        let mut scores = vec![base_score; n];
        let mut trees: Vec<RegTree> = Vec::new();
        let mut importance = vec![0.0f64; train.dim()];

        let mut best_valid = f64::INFINITY;
        let mut best_len = 0usize;
        let mut since_best = 0usize;

        let mut grad = vec![0f32; n];
        let mut hess = vec![0f32; n];
        #[allow(clippy::needless_range_loop)] // grad/hess/scores walked in lockstep
        for _round in 0..params.n_rounds {
            for i in 0..n {
                let p = sigmoid(scores[i]);
                let y = train.labels[i] as u8 as f32;
                let w = if train.labels[i] { pos_weight } else { 1.0 };
                grad[i] = (p - y) * w;
                hess[i] = (p * (1.0 - p)).max(1e-6) * w;
            }

            // GOSS selection with gradient amplification.
            let mut sel: Vec<u32>;
            let mut amp = vec![1.0f32; 0];
            match params.goss {
                Some((a, b)) if boost_idx.len() > 2000 => {
                    let mut by_grad: Vec<u32> = boost_idx.to_vec();
                    by_grad.sort_by(|&x, &y| {
                        grad[y as usize]
                            .abs()
                            .partial_cmp(&grad[x as usize].abs())
                            .unwrap()
                    });
                    let top_n = (by_grad.len() as f64 * a) as usize;
                    let rest_n = (by_grad.len() as f64 * b) as usize;
                    sel = by_grad[..top_n].to_vec();
                    let rest = &by_grad[top_n..];
                    let scale = ((1.0 - a) / b) as f32;
                    amp = vec![1.0; sel.len()];
                    for _ in 0..rest_n {
                        let j = rng.random_range(0..rest.len());
                        sel.push(rest[j]);
                        amp.push(scale);
                    }
                }
                _ => {
                    sel = boost_idx.to_vec();
                }
            }
            // Apply amplification into copies of grad/hess for this round.
            let (g_round, h_round): (Vec<f32>, Vec<f32>) = if amp.is_empty() {
                (grad.clone(), hess.clone())
            } else {
                let mut g = grad.clone();
                let mut h = hess.clone();
                for (k, &i) in sel.iter().enumerate() {
                    g[i as usize] *= amp[k];
                    h[i as usize] *= amp[k];
                }
                (g, h)
            };

            let tree = grow_tree(&data, &g_round, &h_round, &sel, params, &mut importance);
            // Update every sample's score.
            for i in 0..n {
                scores[i] += params.learning_rate * tree.predict_binned(&data, i);
            }
            trees.push(tree);

            // Validation logloss for early stopping.
            if !valid_idx.is_empty() {
                let mut loss = 0.0f64;
                for &i in valid_idx {
                    let p = sigmoid(scores[i as usize]).clamp(1e-6, 1.0 - 1e-6);
                    let y = train.labels[i as usize];
                    let w = if y { pos_weight as f64 } else { 1.0 };
                    loss -= w * if y { (p as f64).ln() } else { (1.0 - p as f64).ln() };
                }
                if loss + 1e-9 < best_valid {
                    best_valid = loss;
                    best_len = trees.len();
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= params.early_stopping_rounds {
                        break;
                    }
                }
            }
        }
        if best_len > 0 {
            trees.truncate(best_len);
        }
        let total: f64 = importance.iter().sum();
        if total > 0.0 {
            importance.iter_mut().for_each(|v| *v /= total);
        }
        Gbdt {
            trees,
            base_score,
            params: *params,
            importance,
        }
    }

    /// Normalized split-gain feature importance (sums to 1).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Positive-class probability for a raw feature row.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        let mut score = self.base_score;
        for tree in &self.trees {
            score += self.params.learning_rate * tree.predict(row);
        }
        sigmoid(score)
    }

    /// Number of boosted trees retained.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

/// Leaf-wise tree growth on (grad, hess).
fn grow_tree(
    data: &BinnedData,
    grad: &[f32],
    hess: &[f32],
    indices: &[u32],
    params: &GbdtParams,
    importance: &mut [f64],
) -> RegTree {
    struct LeafState {
        node: u32,
        indices: Vec<u32>,
        sum_g: f64,
        sum_h: f64,
    }

    let lambda = params.lambda;
    let leaf_value = |g: f64, h: f64| (-g / (h + lambda)) as f32;

    let mut nodes: Vec<RegNode> = Vec::new();
    let sum_g: f64 = indices.iter().map(|&i| grad[i as usize] as f64).sum();
    let sum_h: f64 = indices.iter().map(|&i| hess[i as usize] as f64).sum();
    nodes.push(RegNode::Leaf {
        value: leaf_value(sum_g, sum_h),
    });
    let mut open = vec![LeafState {
        node: 0,
        indices: indices.to_vec(),
        sum_g,
        sum_h,
    }];
    let mut n_leaves = 1usize;

    while n_leaves < params.max_leaves {
        // Find the open leaf with the best split.
        let mut best: Option<(usize, u16, u8, f64, f64, f64)> = None; // (leaf, f, cut, gain, gl, hl)
        for (li, leaf) in open.iter().enumerate() {
            if leaf.indices.len() < 2 * params.min_samples_leaf {
                continue;
            }
            if let Some((f, cut, gain, gl, hl)) =
                best_gain_split(data, grad, hess, &leaf.indices, leaf.sum_g, leaf.sum_h, params)
            {
                if best.is_none_or(|(_, _, _, g, _, _)| gain > g) {
                    best = Some((li, f, cut, gain, gl, hl));
                }
            }
        }
        let Some((li, f, cut, gain, gl, hl)) = best else {
            break;
        };
        importance[f as usize] += gain;
        let leaf = open.swap_remove(li);
        let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
        for &i in &leaf.indices {
            if data.code(f as usize, i as usize) <= cut {
                left_idx.push(i);
            } else {
                right_idx.push(i);
            }
        }
        let gr = leaf.sum_g - gl;
        let hr = leaf.sum_h - hl;
        let left_id = nodes.len() as u32;
        nodes.push(RegNode::Leaf {
            value: leaf_value(gl, hl),
        });
        let right_id = nodes.len() as u32;
        nodes.push(RegNode::Leaf {
            value: leaf_value(gr, hr),
        });
        nodes[leaf.node as usize] = RegNode::Split {
            feature: f,
            threshold: data.binner.threshold(f as usize, cut),
            cut,
            left: left_id,
            right: right_id,
        };
        open.push(LeafState {
            node: left_id,
            indices: left_idx,
            sum_g: gl,
            sum_h: hl,
        });
        open.push(LeafState {
            node: right_id,
            indices: right_idx,
            sum_g: gr,
            sum_h: hr,
        });
        n_leaves += 1;
    }
    RegTree { nodes }
}

/// Best second-order-gain split of one leaf; returns
/// `(feature, cut, gain, left_grad, left_hess)`.
fn best_gain_split(
    data: &BinnedData,
    grad: &[f32],
    hess: &[f32],
    indices: &[u32],
    sum_g: f64,
    sum_h: f64,
    params: &GbdtParams,
) -> Option<(u16, u8, f64, f64, f64)> {
    let lambda = params.lambda;
    let parent = sum_g * sum_g / (sum_h + lambda);
    let mut best: Option<(u16, u8, f64, f64, f64)> = None;
    let mut g_hist = [0f64; 256];
    let mut h_hist = [0f64; 256];
    let mut c_hist = [0u32; 256];
    for f in 0..data.d {
        let bins = data.binner.bins(f);
        if bins < 2 {
            continue;
        }
        g_hist[..bins].fill(0.0);
        h_hist[..bins].fill(0.0);
        c_hist[..bins].fill(0);
        for &i in indices {
            let b = data.code(f, i as usize) as usize;
            g_hist[b] += grad[i as usize] as f64;
            h_hist[b] += hess[i as usize] as f64;
            c_hist[b] += 1;
        }
        let mut gl = 0f64;
        let mut hl = 0f64;
        let mut cl = 0u32;
        for cut in 0..bins - 1 {
            gl += g_hist[cut];
            hl += h_hist[cut];
            cl += c_hist[cut];
            let cr = indices.len() as u32 - cl;
            if (cl as usize) < params.min_samples_leaf || (cr as usize) < params.min_samples_leaf
            {
                continue;
            }
            let gr = sum_g - gl;
            let hr = sum_h - hl;
            let gain = gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent;
            if gain > 1e-9 && best.is_none_or(|(_, _, g, _, _)| gain > g) {
                best = Some((f as u16, cut as u8, gain, gl, hl));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfp_dram::address::DimmId;
    use mfp_dram::time::SimTime;

    fn ring_set(seed: u64, n: usize) -> SampleSet {
        // Nonlinear boundary: positive inside an annulus.
        let mut s = SampleSet::new();
        s.schema = vec!["x".into(), "y".into()];
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let x: f32 = rng.random::<f32>() * 2.0 - 1.0;
            let y: f32 = rng.random::<f32>() * 2.0 - 1.0;
            let r = (x * x + y * y).sqrt();
            s.push(
                vec![x, y],
                (0.4..0.8).contains(&r),
                DimmId::new(i as u32, 0),
                SimTime::from_secs(i as u64),
            );
        }
        s
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let train = ring_set(1, 2000);
        let test = ring_set(2, 500);
        let params = GbdtParams {
            n_rounds: 80,
            goss: None,
            ..Default::default()
        };
        let model = Gbdt::fit(&train, &params);
        let mut correct = 0;
        for i in 0..test.len() {
            let p = model.predict_proba(test.row(i));
            if (p > 0.5) == test.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn early_stopping_truncates() {
        let train = ring_set(3, 800);
        let params = GbdtParams {
            n_rounds: 500,
            early_stopping_rounds: 5,
            goss: None,
            ..Default::default()
        };
        let model = Gbdt::fit(&train, &params);
        assert!(model.n_trees() < 500, "early stopping must kick in");
        assert!(model.n_trees() > 0);
    }

    #[test]
    fn goss_still_learns() {
        let train = ring_set(4, 4000);
        let test = ring_set(5, 500);
        let params = GbdtParams {
            n_rounds: 60,
            goss: Some((0.2, 0.2)),
            ..Default::default()
        };
        let model = Gbdt::fit(&train, &params);
        let mut correct = 0;
        for i in 0..test.len() {
            if (model.predict_proba(test.row(i)) > 0.5) == test.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.85, "GOSS accuracy {acc}");
    }

    #[test]
    fn max_leaves_bounds_tree_size() {
        let train = ring_set(6, 1000);
        let params = GbdtParams {
            n_rounds: 3,
            max_leaves: 4,
            goss: None,
            ..Default::default()
        };
        let model = Gbdt::fit(&train, &params);
        for t in &model.trees {
            assert!(t.leaves() <= 4);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let train = ring_set(7, 500);
        let params = GbdtParams {
            n_rounds: 10,
            ..Default::default()
        };
        let a = Gbdt::fit(&train, &params);
        let b = Gbdt::fit(&train, &params);
        assert_eq!(a.predict_proba(train.row(0)), b.predict_proba(train.row(0)));
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let train = ring_set(8, 300);
        let model = Gbdt::fit(
            &train,
            &GbdtParams {
                n_rounds: 10,
                ..Default::default()
            },
        );
        for i in 0..train.len() {
            let p = model.predict_proba(train.row(i));
            assert!((0.0..=1.0).contains(&p), "p={p}");
        }
    }
}
