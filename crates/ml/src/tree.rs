//! CART decision trees on binned data (Gini impurity), the base learner of
//! the Random Forest.

use crate::binning::BinnedData;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for a classification tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Number of features considered per split (0 = all).
    pub feature_subsample: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_leaf: 5,
            feature_subsample: 0,
        }
    }
}

/// A tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        prob: f32,
    },
    Split {
        feature: u16,
        /// Raw-value threshold: `value <= threshold` goes left.
        threshold: f32,
        /// Bin cut used during training (`bin <= cut` goes left).
        cut: u8,
        left: u32,
        right: u32,
    },
}

/// A trained CART classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Fits a tree on `indices` of the binned data.
    ///
    /// `labels[i]` is sample `i`'s class; `rng` drives feature subsampling.
    pub fn fit<R: Rng>(
        data: &BinnedData,
        labels: &[bool],
        indices: &[u32],
        params: &TreeParams,
        rng: &mut R,
    ) -> Self {
        let mut unused = vec![0.0; data.d];
        DecisionTree::fit_with_importance(data, labels, indices, params, rng, &mut unused)
    }

    /// Fits a tree, accumulating each split's (weighted) Gini gain into
    /// `importance[feature]`.
    ///
    /// # Panics
    ///
    /// Panics if `importance.len() != data.d`.
    pub fn fit_with_importance<R: Rng>(
        data: &BinnedData,
        labels: &[bool],
        indices: &[u32],
        params: &TreeParams,
        rng: &mut R,
        importance: &mut [f64],
    ) -> Self {
        assert_eq!(importance.len(), data.d);
        let mut tree = DecisionTree { nodes: Vec::new() };
        let mut idx = indices.to_vec();
        tree.grow(data, labels, &mut idx, params, 0, rng, importance);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn grow<R: Rng>(
        &mut self,
        data: &BinnedData,
        labels: &[bool],
        indices: &mut [u32],
        params: &TreeParams,
        depth: usize,
        rng: &mut R,
        importance: &mut [f64],
    ) -> u32 {
        let n = indices.len();
        let pos = indices.iter().filter(|&&i| labels[i as usize]).count();
        let prob = pos as f32 / n.max(1) as f32;
        let node_id = self.nodes.len() as u32;

        if depth >= params.max_depth || n < 2 * params.min_samples_leaf || pos == 0 || pos == n {
            self.nodes.push(Node::Leaf { prob });
            return node_id;
        }

        let Some((feature, cut, gain)) = best_gini_split(data, labels, indices, params, rng)
        else {
            self.nodes.push(Node::Leaf { prob });
            return node_id;
        };

        // Partition in place.
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            if data.code(feature as usize, indices[lo] as usize) <= cut {
                lo += 1;
            } else {
                hi -= 1;
                indices.swap(lo, hi);
            }
        }
        if lo < params.min_samples_leaf || n - lo < params.min_samples_leaf {
            self.nodes.push(Node::Leaf { prob });
            return node_id;
        }

        importance[feature as usize] += gain * n as f64;
        self.nodes.push(Node::Leaf { prob }); // placeholder
        let (left_idx, right_idx) = indices.split_at_mut(lo);
        let left = self.grow(data, labels, left_idx, params, depth + 1, rng, importance);
        let right = self.grow(data, labels, right_idx, params, depth + 1, rng, importance);
        self.nodes[node_id as usize] = Node::Split {
            feature,
            threshold: data.binner.threshold(feature as usize, cut),
            cut,
            left,
            right,
        };
        node_id
    }

    /// Probability of the positive class for a raw feature row.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left as usize).max(depth_of(nodes, *right as usize))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }
}

/// Finds the best Gini split over (subsampled) features; returns
/// `(feature, bin cut, gain)`.
fn best_gini_split<R: Rng>(
    data: &BinnedData,
    labels: &[bool],
    indices: &[u32],
    params: &TreeParams,
    rng: &mut R,
) -> Option<(u16, u8, f64)> {
    let n = indices.len() as f64;
    let total_pos = indices.iter().filter(|&&i| labels[i as usize]).count() as f64;
    let parent_gini = gini(total_pos, n);

    let features: Vec<usize> = if params.feature_subsample == 0
        || params.feature_subsample >= data.d
    {
        (0..data.d).collect()
    } else {
        // Sample without replacement.
        let mut all: Vec<usize> = (0..data.d).collect();
        for k in 0..params.feature_subsample {
            let j = rng.random_range(k..all.len());
            all.swap(k, j);
        }
        all.truncate(params.feature_subsample);
        all
    };

    let mut best: Option<(u16, u8, f64)> = None;
    let mut count_hist = [0u32; 256];
    let mut pos_hist = [0u32; 256];
    for &f in &features {
        let bins = data.binner.bins(f);
        if bins < 2 {
            continue;
        }
        count_hist[..bins].fill(0);
        pos_hist[..bins].fill(0);
        for &i in indices {
            let b = data.code(f, i as usize) as usize;
            count_hist[b] += 1;
            pos_hist[b] += labels[i as usize] as u32;
        }
        let mut left_n = 0f64;
        let mut left_pos = 0f64;
        for cut in 0..bins - 1 {
            left_n += count_hist[cut] as f64;
            left_pos += pos_hist[cut] as f64;
            let right_n = n - left_n;
            if left_n < params.min_samples_leaf as f64
                || right_n < params.min_samples_leaf as f64
            {
                continue;
            }
            let right_pos = total_pos - left_pos;
            let weighted =
                (left_n / n) * gini(left_pos, left_n) + (right_n / n) * gini(right_pos, right_n);
            let gain = parent_gini - weighted;
            // Zero-gain splits are allowed (XOR-like interactions have no
            // first-order gain); growth is bounded by depth and leaf size.
            if gain > -1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((f as u16, cut as u8, gain));
            }
        }
    }
    best
}

fn gini(pos: f64, n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinnedData;
    use mfp_dram::address::DimmId;
    use mfp_dram::time::SimTime;
    use mfp_features::dataset::SampleSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_set(rows: Vec<(Vec<f32>, bool)>) -> SampleSet {
        let mut s = SampleSet::new();
        s.schema = (0..rows[0].0.len()).map(|i| format!("f{i}")).collect();
        for (i, (row, y)) in rows.into_iter().enumerate() {
            s.push(row, y, DimmId::new(i as u32, 0), SimTime::from_secs(i as u64));
        }
        s
    }

    fn xor_set() -> SampleSet {
        // XOR of two binary features: needs depth 2.
        let mut rows = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..25 {
                    rows.push((vec![a as f32, b as f32], (a ^ b) == 1));
                }
            }
        }
        make_set(rows)
    }

    #[test]
    fn learns_xor_exactly() {
        let set = xor_set();
        let data = BinnedData::from_samples(&set, 8);
        let labels = set.labels.clone();
        let indices: Vec<u32> = (0..set.len() as u32).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&data, &labels, &indices, &TreeParams::default(), &mut rng);
        for (row, want) in [
            (vec![0.0f32, 0.0], 0.0f32),
            (vec![0.0, 1.0], 1.0),
            (vec![1.0, 0.0], 1.0),
            (vec![1.0, 1.0], 0.0),
        ] {
            assert_eq!(tree.predict_proba(&row), want, "{row:?}");
        }
        assert!(tree.depth() >= 3);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let set = make_set(vec![
            (vec![1.0, 2.0], false),
            (vec![3.0, 4.0], false),
            (vec![5.0, 6.0], false),
        ]);
        let data = BinnedData::from_samples(&set, 8);
        let indices: Vec<u32> = (0..3).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&data, &set.labels, &indices, &TreeParams::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&[9.0, 9.0]), 0.0);
    }

    #[test]
    fn respects_max_depth() {
        let set = xor_set();
        let data = BinnedData::from_samples(&set, 8);
        let indices: Vec<u32> = (0..set.len() as u32).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let params = TreeParams {
            max_depth: 1,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&data, &set.labels, &indices, &params, &mut rng);
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn min_samples_leaf_blocks_tiny_splits() {
        let set = make_set(vec![
            (vec![0.0], false),
            (vec![1.0], true),
            (vec![2.0], false),
            (vec![3.0], false),
        ]);
        let data = BinnedData::from_samples(&set, 8);
        let indices: Vec<u32> = (0..4).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let params = TreeParams {
            min_samples_leaf: 3,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&data, &set.labels, &indices, &params, &mut rng);
        assert_eq!(tree.node_count(), 1, "4 samples can't split with leaf>=3");
    }

    #[test]
    fn separable_data_splits_on_right_feature() {
        // Feature 1 is pure noise; feature 0 separates at 0.5.
        let mut rows = Vec::new();
        for i in 0..100 {
            let y = i % 2 == 0;
            let x0 = if y { 1.0 } else { 0.0 };
            rows.push((vec![x0, (i % 7) as f32], y));
        }
        let set = make_set(rows);
        let data = BinnedData::from_samples(&set, 16);
        let indices: Vec<u32> = (0..set.len() as u32).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let tree = DecisionTree::fit(&data, &set.labels, &indices, &TreeParams::default(), &mut rng);
        assert_eq!(tree.predict_proba(&[0.0, 3.0]), 0.0);
        assert_eq!(tree.predict_proba(&[1.0, 3.0]), 1.0);
    }
}
