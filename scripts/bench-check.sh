#!/usr/bin/env bash
# Perf-trajectory gate over the committed BENCH_*.json baselines.
#
# Re-runs each smoke gate (via scripts/smoke.sh) with its baseline
# output redirected to a scratch dir, then compares the fresh JSON
# against the committed one:
#
#   * config_hash must match — a silently drifted benchmark config would
#     make every perf comparison meaningless, so a mismatch FAILS.
#   * any "identical": false in the fresh run FAILS, always — identity
#     is the correctness gate and does not care about hardware.
#   * wall_secs / events_per_sec / outputs_per_sec are compared pairwise
#     in document order. When the committed `cores` matches this host's
#     recorded cores the comparison is enforced (a fresh value worse
#     than the committed one by more than BENCH_CHECK_MAX_REGRESSION x
#     FAILS); when cores differ — the usual case on shared CI runners —
#     perf deltas are reported as warnings only.
#
# BENCH_fleet_large.json (the 100k-DIMM x 1-year event-engine run) is
# too big to re-run in CI; its *recorded* identity flags are validated
# instead: any "identical": false in the committed file fails the gate.
#
# A trajectory report (every comparison line) is written for the CI
# artifact upload.
#
# Usage: scripts/bench-check.sh            re-run + compare all gates
#        scripts/bench-check.sh --self-test  comparator unit test with
#                                            fabricated baseline pairs
#                                            (injected identity failure,
#                                            hash mismatch, cores skew)
#
# Environment:
#   BENCH_CHECK_ONLY="fleet serve"   subset of gates to re-run
#   BENCH_CHECK_MAX_REGRESSION=5.0   enforced perf regression factor
#   BENCH_CHECK_REPORT=bench-check-report.txt
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MAXX="${BENCH_CHECK_MAX_REGRESSION:-5.0}"
REPORT_FILE="${BENCH_CHECK_REPORT:-bench-check-report.txt}"
FAILURES=0
WARNINGS=0

say() {
  echo "$1"
  echo "$1" >> "$REPORT_FILE"
}

# All numeric values of `key` in `file`, in document order.
nums() { # file key
  grep -o "\"$2\": *[0-9.eE+-]*" "$1" | sed -E 's/.*: *//' || true
}

str_of() { # file key
  grep -o "\"$2\": *\"[^\"]*\"" "$1" | head -1 | sed -E 's/.*: *"([^"]*)"/\1/' || true
}

int_of() { # file key
  nums "$1" "$2" | head -1
}

# Pairwise perf comparison of one key. Emits WARN/FAIL lines; bumps the
# global counters. `enforce=1` turns regressions into failures.
perf_key() { # committed fresh name key kind(wall|rate) enforce
  local c="$1" f="$2" name="$3" key="$4" kind="$5" enforce="$6"
  local cvals fvals
  cvals="$(nums "$c" "$key")"
  fvals="$(nums "$f" "$key")"
  [ -z "$cvals" ] && return 0
  if [ "$(echo "$cvals" | wc -l)" != "$(echo "$fvals" | wc -l)" ]; then
    say "WARN $name: $key count differs (baseline schema changed?) — refresh the committed baseline"
    WARNINGS=$((WARNINGS + 1))
    return 0
  fi
  local out
  out="$(paste <(echo "$cvals") <(echo "$fvals") | awk -v key="$key" -v maxx="$MAXX" -v kind="$kind" '
    {
      i += 1
      c = $1 + 0; f = $2 + 0
      if (c <= 0 || f <= 0) next
      worse = (kind == "wall") ? f / c : c / f
      if (worse > maxx)
        printf "%s[%d]: committed %.6g, fresh %.6g (%.1fx worse than the %.1fx allowance)\n", key, i, c, f, worse, maxx
    }')"
  if [ -n "$out" ]; then
    while IFS= read -r line; do
      if [ "$enforce" = 1 ]; then
        say "FAIL $name: perf regression: $line"
        FAILURES=$((FAILURES + 1))
      else
        say "WARN $name: perf delta (cores differ, not enforced): $line"
        WARNINGS=$((WARNINGS + 1))
      fi
    done <<< "$out"
  fi
}

# The comparator: committed vs fresh baseline for one gate.
compare_json() { # committed fresh name
  local c="$1" f="$2" name="$3"
  if [ ! -f "$c" ]; then
    say "WARN $name: no committed baseline $c — skipping"
    WARNINGS=$((WARNINGS + 1))
    return 0
  fi
  if [ ! -f "$f" ]; then
    say "FAIL $name: fresh run produced no baseline at $f"
    FAILURES=$((FAILURES + 1))
    return 0
  fi

  local chash fhash
  chash="$(str_of "$c" config_hash)"
  fhash="$(str_of "$f" config_hash)"
  if [ -n "$chash" ] && [ "$chash" != "$fhash" ]; then
    say "FAIL $name: config_hash mismatch (committed $chash, fresh ${fhash:-none}) — the benchmark config drifted; regenerate the committed baseline deliberately"
    FAILURES=$((FAILURES + 1))
    return 0
  fi

  local bad_identity
  bad_identity="$(grep -c '"identical": *false' "$f" || true)"
  if [ "$bad_identity" -gt 0 ]; then
    say "FAIL $name: $bad_identity run(s) reported \"identical\": false — bit-identity regression"
    FAILURES=$((FAILURES + 1))
    return 0
  fi

  local ccores fcores enforce before
  ccores="$(int_of "$c" cores)"
  fcores="$(int_of "$f" cores)"
  enforce=0
  if [ -n "$ccores" ] && [ "$ccores" = "$fcores" ]; then
    enforce=1
  fi
  before=$FAILURES
  perf_key "$c" "$f" "$name" wall_secs wall "$enforce"
  perf_key "$c" "$f" "$name" events_per_sec rate "$enforce"
  perf_key "$c" "$f" "$name" outputs_per_sec rate "$enforce"
  if [ "$FAILURES" -eq "$before" ]; then
    say "OK   $name: config_hash $chash, identity clean, perf $([ "$enforce" = 1 ] && echo enforced || echo "warn-only (cores: committed ${ccores:-n/a}, here ${fcores:-n/a})")"
  fi
}

# Static validation of a committed large-run baseline (never re-run).
check_recorded_identity() { # committed name
  local c="$1" name="$2"
  if [ ! -f "$c" ]; then
    say "WARN $name: $c not present — skipping recorded-identity check"
    WARNINGS=$((WARNINGS + 1))
    return 0
  fi
  if grep -q '"identical": *false' "$c"; then
    say "FAIL $name: committed baseline records \"identical\": false"
    FAILURES=$((FAILURES + 1))
  elif ! grep -q '"identical": *true' "$c"; then
    say "FAIL $name: committed baseline records no identity flag at all"
    FAILURES=$((FAILURES + 1))
  else
    say "OK   $name: recorded identity flags are all true"
  fi
}

self_test() {
  local t
  t="$(mktemp -d /tmp/bench-check.XXXXXX)"
  trap 'rm -rf "$t"' EXIT
  local rc

  # A healthy pair: same hash, same cores, identity true, similar perf.
  cat > "$t/good_committed.json" <<'EOF'
{"bench": "x", "cores": 4, "config_hash": "abc123",
 "baseline": {"wall_secs": 1.0, "events_per_sec": 1000.0},
 "runs": [{"wall_secs": 0.5, "events_per_sec": 2000.0, "identical": true}]}
EOF
  sed 's/0\.5/0.6/' "$t/good_committed.json" > "$t/good_fresh.json"

  # Injected identity failure.
  sed 's/"identical": true/"identical": false/' "$t/good_committed.json" > "$t/bad_identity.json"

  # Drifted config.
  sed 's/abc123/def456/' "$t/good_fresh.json" > "$t/bad_hash.json"

  # Different host, much slower: must warn, not fail.
  sed -e 's/"cores": 4/"cores": 64/' -e 's/"wall_secs": 0.5/"wall_secs": 50.0/' \
    "$t/good_committed.json" > "$t/slow_other_host.json"

  # Same host, much slower: must fail.
  sed 's/"wall_secs": 0.5/"wall_secs": 50.0/' "$t/good_committed.json" > "$t/slow_same_host.json"

  echo "[bench-check] self-test: healthy pair must pass"
  FAILURES=0
  compare_json "$t/good_committed.json" "$t/good_fresh.json" self-good
  [ "$FAILURES" -eq 0 ] || { echo "[bench-check] SELF-TEST FAILED: healthy pair flagged"; exit 1; }

  echo "[bench-check] self-test: injected identity=false must fail"
  FAILURES=0
  compare_json "$t/good_committed.json" "$t/bad_identity.json" self-identity
  [ "$FAILURES" -gt 0 ] || { echo "[bench-check] SELF-TEST FAILED: identity=false not caught"; exit 1; }

  echo "[bench-check] self-test: config_hash drift must fail"
  FAILURES=0
  compare_json "$t/good_committed.json" "$t/bad_hash.json" self-hash
  [ "$FAILURES" -gt 0 ] || { echo "[bench-check] SELF-TEST FAILED: hash drift not caught"; exit 1; }

  echo "[bench-check] self-test: slow run on a different host must warn only"
  FAILURES=0; WARNINGS=0
  compare_json "$t/good_committed.json" "$t/slow_other_host.json" self-othercores
  { [ "$FAILURES" -eq 0 ] && [ "$WARNINGS" -gt 0 ]; } \
    || { echo "[bench-check] SELF-TEST FAILED: cores-differ perf delta handled wrong"; exit 1; }

  echo "[bench-check] self-test: slow run on the same host must fail"
  FAILURES=0
  compare_json "$t/good_committed.json" "$t/slow_same_host.json" self-samecores
  [ "$FAILURES" -gt 0 ] || { echo "[bench-check] SELF-TEST FAILED: same-host regression not caught"; exit 1; }

  echo "[bench-check] self-test: recorded identity=false in a committed file must fail"
  FAILURES=0
  check_recorded_identity "$t/bad_identity.json" self-recorded
  [ "$FAILURES" -gt 0 ] || { echo "[bench-check] SELF-TEST FAILED: recorded identity=false not caught"; exit 1; }

  echo "[bench-check] self-test passed"
  exit 0
}

: > "$REPORT_FILE"
say "bench-check trajectory report ($(date -u +%Y-%m-%dT%H:%M:%SZ 2>/dev/null || echo unknown-time))"
say "host cores: $(nproc 2>/dev/null || echo unknown), max enforced regression: ${MAXX}x"

if [ "${1:-}" = "--self-test" ]; then
  self_test
fi

GATES="${BENCH_CHECK_ONLY:-fleet serve wal failover procfail}"
SCRATCH="$(mktemp -d /tmp/bench-check.XXXXXX)"
trap 'rm -rf "$SCRATCH"' EXIT

for gate in $GATES; do
  case "$gate" in
    fleet)    committed="$ROOT/BENCH_fleet.json";    out_var=FLEET_OUT ;;
    serve)    committed="$ROOT/BENCH_serve.json";    out_var=SERVE_OUT ;;
    wal)      committed="$ROOT/BENCH_wal.json";      out_var=WAL_OUT ;;
    failover) committed="$ROOT/BENCH_failover.json"; out_var=FAILOVER_OUT ;;
    procfail) committed="$ROOT/BENCH_procfail.json"; out_var=PROCFAIL_OUT ;;
    *) echo "[bench-check] unknown gate '$gate'" >&2; exit 2 ;;
  esac
  fresh="$SCRATCH/$gate.json"
  echo "[bench-check] re-running $gate ..." >&2
  if env "$out_var=$fresh" "$ROOT/scripts/smoke.sh" "$gate" >> "$REPORT_FILE" 2>&1; then
    compare_json "$committed" "$fresh" "$gate"
  else
    say "FAIL $gate: smoke run itself failed (its own identity/recall gate tripped) — see report"
    FAILURES=$((FAILURES + 1))
  fi
done

check_recorded_identity "$ROOT/BENCH_fleet_large.json" fleet-large

say "bench-check: $FAILURES failure(s), $WARNINGS warning(s)"
[ "$FAILURES" -eq 0 ] || exit 1
