#!/usr/bin/env bash
# Durability smoke: run the write-ahead-log benchmark, which measures the
# WAL's logging overhead against the bare sequential predictor and then
# truncates the log at sampled byte offsets — simulated crashes — failing
# the build unless every recovery + resume reproduces the uncrashed alarm
# log bit for bit (wal_replay exits non-zero on the first divergent cut).
# Writes a machine-readable BENCH_wal.json that the CI job uploads.
#
# Prefers cargo; falls back to the offline rustc harness when the
# registry is unreachable (air-gapped CI).
#
# Usage: scripts/wal-smoke.sh [extra wal_replay flags ...]
#
# Environment:
#   DIMMS=1000            fleet size (Purley sub-population)
#   CUTS=8                simulated crash offsets to sample
#   SHARDS=2              serving shards behind the WAL
#   WAL_OUT=BENCH_wal.json  baseline path
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WAL_ARGS=(
  --dimms "${DIMMS:-1000}"
  --cuts "${CUTS:-8}"
  --shards "${SHARDS:-2}"
  --horizon-days 30
  --out "${WAL_OUT:-BENCH_wal.json}"
  "$@"
)

if cargo build --release -p mfp-bench --bin wal_replay 2>/dev/null; then
  cargo run --release -p mfp-bench --bin wal_replay -- "${WAL_ARGS[@]}"
  exit $?
fi

echo "[wal-smoke] cargo unavailable, using the offline harness" >&2
"$ROOT/scripts/offline-test.sh" --bin wal_replay -- "${WAL_ARGS[@]}"
