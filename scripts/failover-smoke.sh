#!/usr/bin/env bash
# Failover smoke: run the crash-chaos gate for the self-healing serving
# path. failover_chaos simulates a Purley sub-fleet, then drives the
# supervised sharded engine (per-shard MFW2 WALs + restart supervisor)
# through seeded schedules of shard kills with torn WAL tails, hangs and
# transient panics across a {1,2,4}-shard matrix, failing the build
# unless every run's merged alarms and scores reproduce the uncrashed
# sequential oracle bit for bit (non-zero exit on the first divergence).
# Writes a machine-readable BENCH_failover.json that the CI job uploads,
# including restart / replay / quarantine counts.
#
# Prefers cargo; falls back to the offline rustc harness when the
# registry is unreachable (air-gapped CI).
#
# Usage: scripts/failover-smoke.sh [extra failover_chaos flags ...]
#
# Environment:
#   DIMMS=800                    fleet size (Purley sub-population)
#   SCHEDULES=3                  chaos schedules per shard count
#   CHAOS_EVENTS=6               injected faults per schedule
#   FAILOVER_OUT=BENCH_failover.json  baseline path
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FAILOVER_ARGS=(
  --dimms "${DIMMS:-800}"
  --schedules "${SCHEDULES:-3}"
  --chaos-events "${CHAOS_EVENTS:-6}"
  --horizon-days 30
  --out "${FAILOVER_OUT:-BENCH_failover.json}"
  "$@"
)

if cargo build --release -p mfp-bench --bin failover_chaos 2>/dev/null; then
  cargo run --release -p mfp-bench --bin failover_chaos -- "${FAILOVER_ARGS[@]}"
  exit $?
fi

echo "[failover-smoke] cargo unavailable, using the offline harness" >&2
"$ROOT/scripts/offline-test.sh" --bin failover_chaos -- "${FAILOVER_ARGS[@]}"
