#!/usr/bin/env bash
# Offline test harness: builds the workspace's library crates and runs
# their unit tests with plain `rustc`, no cargo, no network, no registry.
#
# Why: CI runners and air-gapped dev boxes can't always reach a crates.io
# mirror, but the workspace's external dependencies are narrow enough to
# shim. This script
#   1. copies every library crate into a scratch dir, rewriting module
#      paths so the whole workspace compiles as ONE crate
#      (`crate::mfp_dram::...`, `crate::mfp_ml::...`, ...),
#   2. strips serde derives (serialization is not under test here),
#   3. substitutes minimal deterministic shims for `rand`, `crossbeam`,
#      `parking_lot` and `bytes`,
#   4. compiles with `rustc --test` and runs the unit tests.
#
# The bench binaries under crates/bench/src/bin/ are compiled (as modules
# of the merged crate) so they stay type-checked offline, and any one of
# them can be *run* with `--bin`.
#
# Out of scope: integration tests under tests/ (need proptest), Criterion
# benches, and doctests. The rand shim is a SplitMix64 stream, NOT the
# real StdRng, so numeric results differ from cargo builds while every
# seed-determinism property still holds.
#
# Usage: scripts/offline-test.sh [test-name-filter ...]
#        scripts/offline-test.sh --bin NAME [-- args ...]
#
# CI behaviour: with no filter arguments the test run is split per crate
# (one compiled harness, one libtest invocation per `mfp_<crate>::`
# prefix) and a pass/fail summary line is printed for each; the script
# exits non-zero if ANY crate fails, so a red crate cannot hide behind a
# green one. With explicit filters the single-run behaviour is kept.
#
# Environment:
#   KEEP_WORK=1   keep the scratch dir (printed on exit) instead of
#                 deleting it — for debugging failed harness builds.
set -euo pipefail

BIN=""
if [ "${1:-}" = "--bin" ]; then
  BIN="${2:?--bin needs a binary name}"
  shift 2
  [ "${1:-}" = "--" ] && shift
fi

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d /tmp/offline-test.XXXXXX)"
trap 'if [ "${KEEP_WORK:-0}" = 1 ]; then echo "[offline-test] keeping work dir $WORK" >&2; else rm -rf "$WORK"; fi' EXIT

# Library crates, with their directory under crates/.
CRATES="obs dram ecc sim features tensor ml mlops core bench"

# Dependency-free integration tests under tests/ that ride along as
# modules of the merged crate (each gets its own summary row). The
# proptest-based ones stay cargo-only.
ITESTS="prop_events"

# A crate directory absent from CRATES would silently vanish from the
# harness table — its tests would never run here and the per-crate
# summary would still look complete. Fail loudly instead.
missing=""
for d in "$ROOT"/crates/*/; do
  c="$(basename "$d")"
  case " $CRATES " in
    *" $c "*) ;;
    *) missing="$missing $c" ;;
  esac
done
if [ -n "$missing" ]; then
  echo "[offline-test] ERROR: workspace crates missing from the harness table (CRATES):$missing" >&2
  exit 1
fi

# transform NAME < in > out: single-crate-ification of one source file.
transform() {
  local name="$1"
  sed -E \
    -e '/^use serde/d' \
    -e 's/, Serialize, Deserialize//g' \
    -e 's/, Serialize//g' \
    -e 's/, Deserialize//g' \
    -e 's/derive\(Serialize\)/derive()/g' \
    -e 's/derive\(Deserialize\)/derive()/g' \
    -e '/#\[serde\(/d' \
    -e "s/crate::/crate::mfp_${name}::/g" \
    -e 's/(^|[^:_[:alnum:]])mfp_([a-z]+)::/\1crate::mfp_\2::/g' \
    -e 's/(^|[^:_[:alnum:]])(rand|crossbeam|parking_lot|bytes)::/\1crate::\2::/g'
}

for crate in $CRATES; do
  src="$ROOT/crates/$crate/src"
  dst="$WORK/mfp_$crate"
  mkdir -p "$dst"
  transform "$crate" < "$src/lib.rs" > "$dst/mod.rs"
  for f in "$src"/*.rs; do
    base="$(basename "$f")"
    [ "$base" = "lib.rs" ] && continue
    transform "$crate" < "$f" > "$dst/$base"
  done
done

# Dependency-free integration tests become modules too, so the offline
# run covers the cross-crate identity properties (e.g. tests/prop_events.rs
# pitting the event engine against the tick oracle).
mkdir -p "$WORK/its"
: > "$WORK/its/mod.rs"
for t in $ITESTS; do
  transform sim < "$ROOT/tests/$t.rs" > "$WORK/its/$t.rs"
  echo "pub mod $t;" >> "$WORK/its/mod.rs"
done

# Bench binaries become modules of the merged crate (entry point exposed
# as `pub fn main` so `--bin` mode can call it).
mkdir -p "$WORK/bins"
: > "$WORK/bins/mod.rs"
for f in "$ROOT"/crates/bench/src/bin/*.rs; do
  base="$(basename "$f" .rs)"
  transform bench < "$f" | sed -E 's/^fn main\(\)/pub fn main()/' > "$WORK/bins/$base.rs"
  echo "pub mod $base;" >> "$WORK/bins/mod.rs"
done

# ---------------------------------------------------------------- shims --

cat > "$WORK/rand.rs" <<'EOF'
//! Deterministic stand-in for the `rand` crate (offline builds only).
//! Implements exactly the API surface this workspace uses; the stream is
//! SplitMix64, not the real StdRng.

/// Seeding entry point (`StdRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator trait.
pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform-in-[0,1) conversion for `random::<T>()`.
pub trait Standard {
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> f32 {
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types `random_range` can sample.
pub trait SampleUniform: Copy {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )*}
}
impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by `random_range`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        T::from_i128(lo + (rng.next_u64() as u128 % (hi - lo) as u128) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        T::from_i128(lo + (rng.next_u64() as u128 % (hi - lo + 1) as u128) as i128)
    }
}

/// Convenience methods (`random`, `random_range`), blanket-implemented.
pub trait RngExt: Rng {
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }
    fn random_range<T, RR: SampleRange<T>>(&mut self, range: RR) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    /// SplitMix64-backed replacement for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
EOF

cat > "$WORK/crossbeam.rs" <<'EOF'
//! Sequential stand-in for `crossbeam::scope`: spawn runs the closure
//! immediately on the calling thread. Determinism-preserving because the
//! workspace only merges worker results in spawn order.

pub struct Scope {
    _private: (),
}

pub struct ScopedJoinHandle<T>(T);

impl<T> ScopedJoinHandle<T> {
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        Ok(self.0)
    }
}

impl Scope {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<T>
    where
        F: FnOnce(&Scope) -> T,
    {
        ScopedJoinHandle(f(self))
    }
}

pub fn scope<F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: FnOnce(&Scope) -> R,
{
    Ok(f(&Scope { _private: () }))
}
EOF

cat > "$WORK/parking_lot.rs" <<'EOF'
//! `parking_lot::RwLock` stand-in over std's lock (panics on poisoning,
//! which no test relies on).

#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap()
    }
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap()
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap()
    }
}
EOF

cat > "$WORK/bytes.rs" <<'EOF'
//! Minimal `bytes` stand-in: big-endian put/get over Vec<u8> / &[u8],
//! mirroring the real crate's wire behavior for the APIs used here.

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[derive(Debug, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn with_capacity(n: usize) -> Self {
        BytesMut(Vec::with_capacity(n))
    }
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

// The checkpoint envelope checksums the partially built buffer
// (`crc32(&buf)` on a `BytesMut`), which relies on the real crate's
// Deref to `[u8]`.
impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}
EOF

# ------------------------------------------------------------- assemble --

{
  echo '//! Generated by scripts/offline-test.sh — the whole workspace as one crate.'
  echo '#![allow(dead_code, unused_imports)]'
  echo 'pub mod rand;'
  echo 'pub mod crossbeam;'
  echo 'pub mod parking_lot;'
  echo 'pub mod bytes;'
  for crate in $CRATES; do
    echo "pub mod mfp_$crate;"
  done
  echo 'pub mod its;'
  echo 'pub mod bins;'
  if [ -n "$BIN" ]; then
    echo "fn main() { bins::$BIN::main() }"
  fi
} > "$WORK/main.rs"

if [ -n "$BIN" ]; then
  echo "[offline-test] compiling binary $BIN in $WORK ..." >&2
  rustc --edition 2021 -O "$WORK/main.rs" -o "$WORK/bin"
  echo "[offline-test] running $BIN ..." >&2
  "$WORK/bin" "$@"
  exit 0
fi

echo "[offline-test] compiling in $WORK ..." >&2
rustc --edition 2021 -O --test "$WORK/main.rs" -o "$WORK/harness"
# Two tests assert statistical thresholds on datasets drawn from the real
# StdRng stream (GBDT ring accuracy > 0.9; a signal-free candidate losing
# an F1 gate). Under the shim's different stream they sit on the wrong
# side of the margin; they are covered by the cargo build, so skip here.
SKIPS=(
  --skip mfp_ml::gbdt::tests::learns_nonlinear_boundary
  --skip mfp_mlops::cicd::tests::regression_is_rejected
)

if [ "$#" -gt 0 ]; then
  # Explicit filters: one run, exit status propagated by `set -e`.
  echo "[offline-test] running tests ..." >&2
  "$WORK/harness" "${SKIPS[@]}" "$@"
  exit 0
fi

# CI mode: one libtest pass per crate (plus one per ride-along
# integration test), with a per-suite verdict and a non-zero exit if any
# suite is red.
failed=""
for crate in $CRATES; do
  echo "[offline-test] testing mfp_$crate ..." >&2
  if "$WORK/harness" "${SKIPS[@]}" "mfp_${crate}::"; then
    echo "[offline-test] crate mfp_$crate: PASS" >&2
  else
    echo "[offline-test] crate mfp_$crate: FAIL" >&2
    failed="$failed mfp_$crate"
  fi
done
for t in $ITESTS; do
  echo "[offline-test] testing tests/$t.rs ..." >&2
  if "$WORK/harness" "${SKIPS[@]}" "its::${t}::"; then
    echo "[offline-test] tests/$t.rs: PASS" >&2
  else
    echo "[offline-test] tests/$t.rs: FAIL" >&2
    failed="$failed tests/$t.rs"
  fi
done

echo "[offline-test] ---- per-crate summary ----" >&2
for crate in $CRATES; do
  case " $failed " in
    *" mfp_$crate "*) echo "[offline-test] mfp_$crate: FAIL" >&2 ;;
    *) echo "[offline-test] mfp_$crate: PASS" >&2 ;;
  esac
done
for t in $ITESTS; do
  case " $failed " in
    *" tests/$t.rs "*) echo "[offline-test] tests/$t.rs: FAIL" >&2 ;;
    *) echo "[offline-test] tests/$t.rs: PASS" >&2 ;;
  esac
done
if [ -n "$failed" ]; then
  echo "[offline-test] FAILED:$failed" >&2
  exit 1
fi
echo "[offline-test] all crates passed" >&2
