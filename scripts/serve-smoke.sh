#!/usr/bin/env bash
# Serving smoke: run the sharded online serving benchmark over a small
# shard x worker matrix and fail the build unless every cell reproduces
# the sequential predictor's alarm log bit for bit (serve_scale exits
# non-zero on the first divergent cell). Also refreshes the sharded
# simulator baseline. Both runs write machine-readable BENCH_*.json
# reports that the CI job uploads as artifacts.
#
# Prefers cargo; falls back to the offline rustc harness when the
# registry is unreachable (air-gapped CI).
#
# Usage: scripts/serve-smoke.sh [extra serve_scale flags ...]
#
# Environment:
#   DIMMS=4000              serving fleet size (Purley sub-population)
#   MATRIX=1x1,2x2,4x2,8x4  shard x worker cells to verify
#   SERVE_OUT=BENCH_serve.json   serving baseline path
#   FLEET_OUT=BENCH_fleet.json   simulator baseline path
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SERVE_ARGS=(
  --dimms "${DIMMS:-4000}"
  --matrix "${MATRIX:-1x1,2x2,4x2,8x4}"
  --horizon-days 30
  --out "${SERVE_OUT:-BENCH_serve.json}"
  "$@"
)
FLEET_ARGS=(
  --dimms 2000
  --shards 8
  --workers 1,2,4
  --horizon-days 30
  --out "${FLEET_OUT:-BENCH_fleet.json}"
)

if cargo build --release -p mfp-bench --bin serve_scale --bin fleet_scale 2>/dev/null; then
  cargo run --release -p mfp-bench --bin serve_scale -- "${SERVE_ARGS[@]}"
  cargo run --release -p mfp-bench --bin fleet_scale -- "${FLEET_ARGS[@]}"
  exit $?
fi

echo "[serve-smoke] cargo unavailable, using the offline harness" >&2
"$ROOT/scripts/offline-test.sh" --bin serve_scale -- "${SERVE_ARGS[@]}"
"$ROOT/scripts/offline-test.sh" --bin fleet_scale -- "${FLEET_ARGS[@]}"
