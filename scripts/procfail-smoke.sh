#!/usr/bin/env bash
# Procfail smoke: run the SIGKILL-chaos gate for process-isolated
# serving. procfail_chaos simulates a Purley sub-fleet, then drives one
# worker OS process per shard (re-execs of the same binary speaking the
# crc32-framed MFP1 pipe protocol) through seeded schedules of real
# SIGKILLs with torn WAL tails, hangs caught by heartbeat deadline, and
# injected apply panics, across a {1,2,4}-shard matrix. The build fails
# unless every run's merged alarms and scores reproduce the uncrashed
# sequential oracle bit for bit (non-zero exit on the first divergence).
# Writes a machine-readable BENCH_procfail.json that the CI job uploads,
# including restart / SIGKILL / replay / quarantine counts.
#
# Prefers cargo; falls back to the offline rustc harness when the
# registry is unreachable (air-gapped CI).
#
# Usage: scripts/procfail-smoke.sh [extra procfail_chaos flags ...]
#
# Environment:
#   DIMMS=400                    fleet size (Purley sub-population)
#   SCHEDULES=2                  chaos schedules per shard count
#   CHAOS_EVENTS=5               injected faults per schedule
#   PROCFAIL_OUT=BENCH_procfail.json  baseline path
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
PROCFAIL_ARGS=(
  --dimms "${DIMMS:-400}"
  --schedules "${SCHEDULES:-2}"
  --chaos-events "${CHAOS_EVENTS:-5}"
  --horizon-days 14
  --out "${PROCFAIL_OUT:-BENCH_procfail.json}"
  "$@"
)

if cargo build --release -p mfp-bench --bin procfail_chaos 2>/dev/null; then
  cargo run --release -p mfp-bench --bin procfail_chaos -- "${PROCFAIL_ARGS[@]}"
  exit $?
fi

echo "[procfail-smoke] cargo unavailable, using the offline harness" >&2
"$ROOT/scripts/offline-test.sh" --bin procfail_chaos -- "${PROCFAIL_ARGS[@]}"
