#!/usr/bin/env bash
# One parameterized smoke driver for every gate binary, replacing the
# five near-identical *-smoke.sh scripts. Each NAME row in the table
# below maps to one mfp-bench binary, its gate arguments, and the
# baseline file it refreshes; the binary exits non-zero when its
# bit-identity (or recall) gate fails, and `set -e` propagates that.
#
# Prefers cargo; falls back to the offline rustc harness when the
# registry is unreachable (air-gapped CI).
#
# Usage: scripts/smoke.sh NAME [NAME ...] [-- extra flags]
#        (extra flags are appended to every named run)
#
# Names:
#   chaos     chaos_e2e       hostile-telemetry sweep + recall floor
#   serve     serve_scale     sharded serving matrix vs sequential oracle
#   fleet     fleet_scale     tick/event engine matrix vs sequential tick
#   wal       wal_replay      WAL crash/recovery bit-identity
#   failover  failover_chaos  supervised-shard crash chaos
#   procfail  procfail_chaos  process-isolated SIGKILL chaos
#
# Environment (per name; unrelated names ignore them):
#   MIN_RECALL=0.7            chaos: recall floor (CI uses 0.90)
#   REPORT=path               tee all runs' output to this file (CI artifact)
#   DIMMS=...                 serve 4000 / wal 1000 / failover 800 / procfail 400
#   MATRIX=1x1,2x2,4x2,8x4    serve: shard x worker cells
#   SERVE_OUT=BENCH_serve.json
#   FLEET_DIMMS=2000 FLEET_SHARDS=1,2,4,8 FLEET_WORKERS=1,2,4
#   ENGINE=both SEED=23       fleet: engine matrix + plan seed
#   FLEET_OUT=BENCH_fleet.json
#   CUTS=8 SHARDS=2           wal: crash offsets / serving shards
#   WAL_OUT=BENCH_wal.json
#   SCHEDULES=... CHAOS_EVENTS=...   failover (3/6), procfail (2/5)
#   FAILOVER_OUT=BENCH_failover.json PROCFAIL_OUT=BENCH_procfail.json
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

NAMES=()
while [ $# -gt 0 ]; do
  if [ "$1" = "--" ]; then
    shift
    break
  fi
  NAMES+=("$1")
  shift
done
EXTRA=("$@")
if [ ${#NAMES[@]} -eq 0 ]; then
  echo "usage: scripts/smoke.sh NAME [NAME ...] [-- extra flags]" >&2
  echo "names: chaos serve fleet wal failover procfail" >&2
  exit 2
fi

# The table: NAME -> (BIN, ARGS). Defaults mirror the committed
# BENCH_*.json baselines so a plain run is comparable to them.
resolve() {
  case "$1" in
    chaos)
      BIN=chaos_e2e
      ARGS=(--rates 0.0,0.15,0.3 --min-recall "${MIN_RECALL:-0.7}")
      ;;
    serve)
      BIN=serve_scale
      ARGS=(--dimms "${DIMMS:-4000}" --matrix "${MATRIX:-1x1,2x2,4x2,8x4}"
            --horizon-days 30 --out "${SERVE_OUT:-BENCH_serve.json}")
      ;;
    fleet)
      BIN=fleet_scale
      ARGS=(--dimms "${FLEET_DIMMS:-2000}" --engine "${ENGINE:-both}"
            --shards "${FLEET_SHARDS:-1,2,4,8}" --workers "${FLEET_WORKERS:-1,2,4}"
            --horizon-days 30 --seed "${SEED:-23}" --out "${FLEET_OUT:-BENCH_fleet.json}")
      ;;
    wal)
      BIN=wal_replay
      ARGS=(--dimms "${DIMMS:-1000}" --cuts "${CUTS:-8}" --shards "${SHARDS:-2}"
            --horizon-days 30 --out "${WAL_OUT:-BENCH_wal.json}")
      ;;
    failover)
      BIN=failover_chaos
      ARGS=(--dimms "${DIMMS:-800}" --schedules "${SCHEDULES:-3}"
            --chaos-events "${CHAOS_EVENTS:-6}" --horizon-days 30
            --out "${FAILOVER_OUT:-BENCH_failover.json}")
      ;;
    procfail)
      BIN=procfail_chaos
      ARGS=(--dimms "${DIMMS:-400}" --schedules "${SCHEDULES:-2}"
            --chaos-events "${CHAOS_EVENTS:-5}" --horizon-days 14
            --out "${PROCFAIL_OUT:-BENCH_procfail.json}")
      ;;
    *)
      echo "[smoke] unknown name '$1' (chaos serve fleet wal failover procfail)" >&2
      exit 2
      ;;
  esac
}

run_cmd() {
  if [ -n "${REPORT:-}" ]; then
    "$@" | tee -a "$REPORT"
  else
    "$@"
  fi
}

[ -n "${REPORT:-}" ] && : > "$REPORT"

for name in "${NAMES[@]}"; do
  resolve "$name"
  echo "[smoke] $name -> $BIN ${ARGS[*]} ${EXTRA[*]:-}" >&2
  if cargo build --release -p mfp-bench --bin "$BIN" 2>/dev/null; then
    run_cmd cargo run --release -p mfp-bench --bin "$BIN" -- "${ARGS[@]}" ${EXTRA[@]+"${EXTRA[@]}"}
  else
    echo "[smoke] cargo unavailable, using the offline harness" >&2
    run_cmd "$ROOT/scripts/offline-test.sh" --bin "$BIN" -- "${ARGS[@]}" ${EXTRA[@]+"${EXTRA[@]}"}
  fi
done
