#!/usr/bin/env bash
# Chaos smoke: run the hostile-telemetry end-to-end sweep at three
# corruption rates and fail the build if alarm recall (vs. the clean
# baseline through the same hardened path) drops below the floor, or if
# the lossless-chaos bit-identity check fails.
#
# Prefers cargo; falls back to the offline rustc harness when the
# registry is unreachable (air-gapped CI).
#
# Usage: scripts/chaos-smoke.sh [extra chaos_e2e flags ...]
#
# Environment:
#   MIN_RECALL=0.7          recall floor passed to chaos_e2e (CI uses 0.90)
#   REPORT=path             also write the sweep output to this file (the
#                           CI job uploads it as a build artifact)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
ARGS=(--rates 0.0,0.15,0.3 --min-recall "${MIN_RECALL:-0.7}" "$@")

run() {
  if [ -n "${REPORT:-}" ]; then
    "$@" | tee "$REPORT"
  else
    "$@"
  fi
}

if cargo build --release -p mfp-bench --bin chaos_e2e 2>/dev/null; then
  run cargo run --release -p mfp-bench --bin chaos_e2e -- "${ARGS[@]}"
  exit $?
fi

echo "[chaos-smoke] cargo unavailable, using the offline harness" >&2
run "$ROOT/scripts/offline-test.sh" --bin chaos_e2e -- "${ARGS[@]}"
