//! Fault analysis across architectures: simulate a mid-sized fleet and
//! reproduce the shape of the paper's §V — the relative UE rate per fault
//! mode (Fig. 4) and the error-bit pattern analysis (Fig. 5).
//!
//! Run with: `cargo run --release --example fault_analysis`

use mfp_core::prelude::*;
use mfp_dram::geometry::Platform;
use mfp_dram::time::SimDuration;
use mfp_features::fault_analysis::FaultThresholds;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50.0);
    eprintln!("simulating 1:{scale:.0}-scale fleet...");
    let fleet = simulate_fleet(&FleetConfig::calibrated(scale, 7));
    let (ces, ues, storms) = fleet.log.counts();
    eprintln!("{ces} CEs, {ues} UEs, {storms} CE storms\n");

    println!("== Table I: dataset description ==");
    for row in dataset_summary(&fleet, SimDuration::hours(3)) {
        println!(
            "{:<14} CE DIMMs {:<6} UE DIMMs {:<5} predictable {:>3.0}%  sudden {:>3.0}%",
            row.platform.to_string(),
            row.dimms_with_ces,
            row.dimms_with_ues,
            row.predictable_pct,
            row.sudden_pct
        );
    }

    println!("\n== Fig. 4: relative UE rate by observed fault mode ==");
    for platform_rates in relative_ue_by_fault_mode(&fleet, &FaultThresholds::default()) {
        println!("{}", platform_rates.platform);
        for (label, n, ue, pct) in &platform_rates.rates {
            let bar = "#".repeat((pct / 2.0).round() as usize);
            println!("  {label:<14} {n:>5} DIMMs  {ue:>4} UEs  {pct:>5.1}% {bar}");
        }
    }

    println!("\n== Fig. 5: UE rate by accumulated error-bit pattern ==");
    for platform in [Platform::IntelPurley, Platform::IntelWhitley] {
        println!("{platform}");
        for panel in error_bit_analysis(&fleet, platform) {
            println!("  {}:", panel.statistic);
            for (bucket, n, _ue, pct) in &panel.buckets {
                if *n < 5 {
                    continue; // skip sparse buckets
                }
                let bar = "#".repeat((pct / 2.0).round() as usize);
                println!("    {bucket:>2}: {n:>5} DIMMs  {pct:>5.1}% {bar}");
            }
        }
    }
}
