//! ECC playground: inject raw error patterns into each platform's ECC
//! model and watch how the same DRAM fault becomes a CE on one
//! architecture and a UE on another — the causal mechanism behind the
//! paper's cross-platform findings.
//!
//! Run with: `cargo run --release --example ecc_playground`

use mfp_dram::bus::ErrorTransfer;
use mfp_dram::geometry::{DataWidth, Platform};
use mfp_ecc::prelude::*;

fn show(name: &str, t: &ErrorTransfer) {
    print!("{name:<46}");
    for p in Platform::ALL {
        let ecc = PlatformEcc::for_platform(p);
        print!(" {:<8}", ecc.decode(t, DataWidth::X4).to_string());
    }
    println!();
}

/// Builds a pattern confined to one x4 device.
fn device_pattern(dev: u8, bits: &[(u8, u8)]) -> ErrorTransfer {
    ErrorTransfer::from_bits(bits.iter().map(|&(beat, dq)| (beat, dev * 4 + dq)))
}

fn main() {
    println!(
        "{:<46} {:<8} {:<8} {:<8}",
        "pattern (x4 rank)", "Purley", "Whitley", "K920"
    );
    println!("{}", "-".repeat(74));

    show("single bit", &device_pattern(5, &[(0, 1)]));
    show(
        "2 bits, one device, strong (even) beat",
        &device_pattern(5, &[(0, 0), (0, 1)]),
    );
    show(
        "2 bits, one device, weak (odd) beat",
        &device_pattern(5, &[(1, 0), (1, 1)]),
    );
    show(
        "2 DQs across beats 1 and 5 (interval 4)",
        &device_pattern(5, &[(1, 0), (5, 1)]),
    );
    let whole_device: Vec<(u8, u8)> = (0..8).flat_map(|b| (0..4).map(move |q| (b, q))).collect();
    show("whole-device failure (chipkill case)", &device_pattern(5, &whole_device));

    let mut two_devices = device_pattern(3, &[(2, 0), (2, 1)]);
    two_devices.set(2, 9 * 4);
    show("two devices erring in the same beat", &two_devices);

    let mut far_devices = device_pattern(3, &[(0, 0)]);
    far_devices.set(5, 9 * 4);
    show("two devices, distant beats", &far_devices);

    println!();
    println!("Reading: 'CE' = corrected, 'UE' = detected uncorrectable,");
    println!("'SDC' = silent corruption (miscorrection).");
    println!();
    println!("Note how the weak-beat and whole-device rows separate Purley");
    println!("from the SDDC platforms: that asymmetry is Finding 2 of the");
    println!("paper, emerging here from real Reed-Solomon / SEC-DED decoding.");
}
