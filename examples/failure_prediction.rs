//! Failure prediction on one platform: trains every Table II algorithm and
//! prints the DIMM-level precision / recall / F1 / VIRR comparison.
//!
//! Run with: `cargo run --release --example failure_prediction [purley|whitley|k920]`
//! (add `--ft` as a second argument to include the FT-Transformer).

use mfp_core::prelude::*;
use mfp_dram::geometry::Platform;
use mfp_ml::model::Algorithm;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let platform = match args.get(1).map(String::as_str) {
        Some("whitley") => Platform::IntelWhitley,
        Some("k920") => Platform::K920,
        _ => Platform::IntelPurley,
    };
    let include_ft = args.iter().any(|a| a == "--ft");

    eprintln!("simulating 1:40-scale fleet...");
    let fleet = simulate_fleet(&FleetConfig::calibrated(40.0, 11));
    let cfg = ExperimentConfig::default();
    eprintln!("building samples for {platform}...");
    let splits = build_splits(&fleet, platform, &cfg);
    eprintln!(
        "fit: {} samples ({} positive) | validation: {} | test: {}",
        splits.fit.len(),
        splits.fit.positives(),
        splits.validation.len(),
        splits.test.len()
    );

    println!(
        "\n{:<22} {:>9} {:>7} {:>6} {:>6}",
        "algorithm", "precision", "recall", "F1", "VIRR"
    );
    println!("{}", "-".repeat(55));
    for algo in Algorithm::ALL {
        if algo == Algorithm::FtTransformer && !include_ft {
            continue;
        }
        let res = evaluate_algorithm(algo, &splits, platform, &cfg);
        let e = &res.evaluation;
        let note = if res.reported_in_paper { "" } else { "  (X in paper)" };
        println!(
            "{:<22} {:>9.2} {:>7.2} {:>6.2} {:>6.2}{note}",
            algo.label(),
            e.precision,
            e.recall,
            e.f1,
            e.virr
        );
    }
    println!("\nNote: a small fleet keeps this example fast; use the bench");
    println!("harness (`cargo run -p mfp-bench --bin table2`) for the");
    println!("paper-scale comparison.");
}
