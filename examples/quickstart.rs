//! Quickstart: simulate a small fleet, print the dataset summary
//! (paper Table I) and evaluate one predictor on Intel Purley.
//!
//! Run with: `cargo run --release --example quickstart`

use mfp_core::prelude::*;
use mfp_dram::geometry::Platform;
use mfp_ml::model::Algorithm;

fn main() {
    // A 1:200-scale fleet over 120 simulated days — seconds to simulate.
    let study = Study::smoke(42);

    println!("== Dataset summary (Table I shape) ==");
    for row in study.dataset_summary() {
        println!(
            "{:<14} CE DIMMs: {:<5} UE DIMMs: {:<4} predictable: {:>4.0}%  sudden: {:>4.0}%",
            row.platform.to_string(),
            row.dimms_with_ces,
            row.dimms_with_ues,
            row.predictable_pct,
            row.sudden_pct
        );
    }

    println!("\n== LightGBM on Intel Purley ==");
    let result = study.evaluate(Platform::IntelPurley, Algorithm::LightGbm);
    let e = &result.evaluation;
    println!(
        "precision {:.2}  recall {:.2}  F1 {:.2}  VIRR {:.2}  (threshold {:.3})",
        e.precision, e.recall, e.f1, e.virr, e.threshold
    );
    println!(
        "confusion: tp={} fp={} fn={} tn={}",
        e.confusion.tp, e.confusion.fp, e.confusion.fn_, e.confusion.tn
    );
    println!();
    println!("Note: the smoke fleet holds only a handful of failing DIMMs, so");
    println!("these metrics are noisy. Run the paper-scale comparison with:");
    println!("    cargo run --release -p mfp-bench --bin table2");
}
