//! The MLOps framework end-to-end (paper §VII, Fig. 6): data pipeline →
//! feature store → CI/CD training and deployment → online streaming
//! prediction → alarms → VM mitigation (measured VIRR) → monitoring,
//! drift detection and the retraining decision.
//!
//! Run with: `cargo run --release --example mlops_pipeline`

use mfp_dram::geometry::Platform;
use mfp_dram::time::{SimDuration, SimTime};
use mfp_ml::model::Algorithm;
use mfp_mlops::prelude::*;
use mfp_features::fault_analysis::FaultThresholds;
use mfp_features::labeling::ProblemConfig;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;
use std::collections::BTreeMap;

fn main() {
    let platform = Platform::IntelPurley;
    let dash = Dashboard::new();

    // ---- Data pipeline: collectors ship BMC logs into the lake. --------
    eprintln!("simulating fleet + ingesting BMC logs...");
    let fleet = simulate_fleet(&FleetConfig::calibrated(50.0, 23));
    let lake = DataLake::new();
    for truth in &fleet.dimms {
        lake.register_dimm(truth.id, truth.platform, truth.spec);
    }
    // Ship the historical window (first 188 days) in encoded form.
    let split = SimTime::ZERO + SimDuration::days(188);
    let mut historical = mfp_dram::bmc::BmcLog::new();
    let mut live: Vec<mfp_dram::event::MemEvent> = Vec::new();
    for e in fleet.log.events() {
        if e.time() < split {
            historical.push(*e);
        } else if e.dimm().server.0 < u32::MAX {
            live.push(*e);
        }
    }
    let rejected = lake.ingest_encoded(&historical.encode()).expect("ingest");
    dash.incr("lake/events_ingested", historical.len() as u64);
    dash.incr("lake/events_rejected", rejected as u64);

    // ---- Feature store: catalog + batch materialization. ----------------
    let store = FeatureStore::new(ProblemConfig::default(), FaultThresholds::default());
    for view in store.views() {
        eprintln!("feature view {} v{} ({} features)", view.name, view.version, view.schema.len());
    }
    let train = store
        .materialize(&lake, platform, SimTime::ZERO, SimTime::ZERO + SimDuration::days(105))
        .downsample_negatives(8);
    let benchmark = store.materialize(
        &lake,
        platform,
        SimTime::ZERO + SimDuration::days(105),
        SimTime::ZERO + SimDuration::days(160),
    );
    let canary = store.materialize(
        &lake,
        platform,
        SimTime::ZERO + SimDuration::days(160),
        split,
    );
    dash.gauge("features/train_samples", train.len() as f64);
    dash.gauge("features/train_positives", train.positives() as f64);

    // ---- CI/CD: train, gate, deploy. ------------------------------------
    eprintln!("running deployment pipeline (LightGBM)...");
    let registry = ModelRegistry::new();
    let run = run_pipeline(
        &registry,
        &PipelineConfig::default(),
        Algorithm::LightGbm,
        platform,
        split,
        &train,
        &benchmark,
        &canary,
    );
    for stage in &run.stages {
        println!(
            "pipeline stage {:<12} {}  ({})",
            stage.stage,
            if stage.passed { "PASS" } else { "FAIL" },
            stage.detail
        );
    }
    if !run.deployed {
        println!("candidate rejected; production unchanged");
        return;
    }
    let entry = registry.production(platform).expect("deployed");
    println!(
        "deployed model #{} ({}): benchmark F1 {:.2}, threshold {:.3}\n",
        entry.id,
        entry.algorithm.label(),
        entry.benchmark.f1,
        entry.threshold
    );
    dash.gauge("registry/production_f1", entry.benchmark.f1);

    // ---- Online prediction over the live stream. -------------------------
    eprintln!("streaming {} live events...", live.len());
    let feedback = FeedbackLoop::new();
    let mut predictor = OnlinePredictor::new(
        &lake,
        &store,
        &registry,
        platform,
        OnlineConfig::default(),
    );
    let mut ue_times: BTreeMap<mfp_dram::address::DimmId, SimTime> = BTreeMap::new();
    for e in &live {
        if let Some((p, _)) = lake.dimm_info(e.dimm()) {
            if p == platform {
                predictor.observe(e);
                if e.is_ue() {
                    ue_times.entry(e.dimm()).or_insert(e.time());
                    feedback.record_ue(e.dimm(), e.time());
                }
            }
        }
    }
    predictor.finish(SimTime::ZERO + SimDuration::days(270));
    for alarm in predictor.alarms() {
        feedback.record_alarm(alarm.dimm, alarm.time);
    }
    dash.incr("online/predictions", predictor.scored());
    dash.incr("online/alarms", predictor.alarms().len() as u64);
    println!(
        "online: {} model invocations, {} alarms, {} UEs in the live window",
        predictor.scored(),
        predictor.alarms().len(),
        ue_times.len()
    );

    // ---- Cloud service: VM mitigation + measured VIRR. -------------------
    let report = evaluate_mitigation(
        predictor.alarms(),
        &ue_times,
        &MitigationConfig::default(),
    );
    println!(
        "mitigation: tp={} fp={} fn={}  interruptions {} -> {:.0}",
        report.tp, report.fp, report.fn_, report.interruptions_without, report.interruptions_with
    );
    println!(
        "VIRR measured {:.2} vs analytic {:.2}\n",
        report.virr_measured, report.virr_analytic
    );
    dash.gauge("service/virr_measured", report.virr_measured);

    // ---- Monitoring: drift + feedback-driven retraining decision. --------
    let live_features = store.materialize(&lake, platform, SimTime::ZERO + SimDuration::days(150), split);
    let drift = psi_report_excluding(
        &benchmark,
        &live_features,
        10,
        &mfp_features::extract::CUMULATIVE_FEATURES,
    );
    let (live_p, live_r) = feedback.live_precision_recall();
    dash.gauge("monitor/max_psi", drift.max_psi());
    dash.gauge("monitor/live_precision", live_p);
    dash.gauge("monitor/live_recall", live_r);
    match RetrainPolicy::default().should_retrain(&drift, &feedback) {
        Some(reason) => println!("retraining triggered: {reason}"),
        None => println!(
            "no retraining needed (max PSI {:.3}, live precision {:.2})",
            drift.max_psi(),
            live_p
        ),
    }

    println!("\n== dashboard ==\n{}", dash.render());
}
