# Convenience entry points; each target works offline (no crates.io
# access needed) via scripts/offline-test.sh when cargo can't resolve
# the registry. The smoke gates share one parameterized driver,
# scripts/smoke.sh — each target below is a thin alias onto its table.

.PHONY: test chaos e2e serve wal failover procfail bench-check ci

# Unit tests for every crate (merged-crate rustc harness).
test:
	scripts/offline-test.sh

# What CI runs: per-crate unit tests (non-zero exit if any crate is red)
# followed by the chaos smoke at the CI recall floor.
ci:
	scripts/offline-test.sh
	MIN_RECALL=0.90 scripts/smoke.sh chaos

# Hostile-telemetry smoke: chaos_e2e at three corruption rates with an
# alarm-recall floor and a lossless bit-identity gate.
chaos:
	scripts/smoke.sh chaos

# Happy-path MLOps end-to-end.
e2e:
	scripts/offline-test.sh --bin mlops_e2e

# Sharded serving matrix: bit-identity gate against the sequential
# predictor, plus the tick/event engine matrix of the fleet simulator;
# refreshes the BENCH_serve.json / BENCH_fleet.json baselines.
serve:
	scripts/smoke.sh serve fleet

# Durability gate: crash the write-ahead log at sampled byte offsets and
# require recovery + resume to reproduce the uncrashed alarm log bit for
# bit; refreshes the BENCH_wal.json baseline.
wal:
	scripts/smoke.sh wal

# Self-healing gate: drive the supervised sharded engine through seeded
# kill/hang/panic schedules (torn WAL tails included) and require merged
# alarms + scores to match the uncrashed oracle bit for bit; refreshes
# the BENCH_failover.json baseline.
failover:
	scripts/smoke.sh failover

# Process-isolation gate: run one worker OS process per shard behind the
# MFP1 pipe protocol, inject real SIGKILLs (torn WAL tails), hangs and
# apply panics, and require merged alarms + scores to match the
# uncrashed oracle bit for bit; refreshes the BENCH_procfail.json
# baseline.
procfail:
	scripts/smoke.sh procfail

# Perf-trajectory gate: re-run every smoke gate into a scratch dir and
# compare the fresh BENCH_*.json against the committed baselines —
# config_hash must match, identity=false always fails, perf regressions
# fail only when the committed `cores` matches this host.
bench-check:
	scripts/bench-check.sh
