# Convenience entry points; each target works offline (no crates.io
# access needed) via scripts/offline-test.sh when cargo can't resolve
# the registry.

.PHONY: test chaos e2e serve wal failover procfail ci

# Unit tests for every crate (merged-crate rustc harness).
test:
	scripts/offline-test.sh

# What CI runs: per-crate unit tests (non-zero exit if any crate is red)
# followed by the chaos smoke at the CI recall floor.
ci:
	scripts/offline-test.sh
	MIN_RECALL=0.90 scripts/chaos-smoke.sh

# Hostile-telemetry smoke: chaos_e2e at three corruption rates with an
# alarm-recall floor and a lossless bit-identity gate.
chaos:
	scripts/chaos-smoke.sh

# Happy-path MLOps end-to-end.
e2e:
	scripts/offline-test.sh --bin mlops_e2e

# Sharded serving matrix: bit-identity gate against the sequential
# predictor plus refreshed BENCH_serve.json / BENCH_fleet.json baselines.
serve:
	scripts/serve-smoke.sh

# Durability gate: crash the write-ahead log at sampled byte offsets and
# require recovery + resume to reproduce the uncrashed alarm log bit for
# bit; refreshes the BENCH_wal.json baseline.
wal:
	scripts/wal-smoke.sh

# Self-healing gate: drive the supervised sharded engine through seeded
# kill/hang/panic schedules (torn WAL tails included) and require merged
# alarms + scores to match the uncrashed oracle bit for bit; refreshes
# the BENCH_failover.json baseline.
failover:
	scripts/failover-smoke.sh

# Process-isolation gate: run one worker OS process per shard behind the
# MFP1 pipe protocol, inject real SIGKILLs (torn WAL tails), hangs and
# apply panics, and require merged alarms + scores to match the
# uncrashed oracle bit for bit; refreshes the BENCH_procfail.json
# baseline.
procfail:
	scripts/procfail-smoke.sh
