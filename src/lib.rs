//! Meta-crate re-exporting the memfault workspace.
pub use mfp_core as core;
