//! `memfault` — command-line front end of the workspace.
//!
//! ```text
//! memfault simulate --scale 50 --seed 42 --out fleet.bmc
//! memfault analyze  --log fleet.bmc
//! memfault predict  --scale 50 --seed 42 --platform purley --algo lightgbm
//! ```

use mfp_core::prelude::*;
use mfp_dram::bmc::BmcLog;
use mfp_dram::geometry::Platform;
use mfp_dram::time::SimDuration;
use mfp_features::fault_analysis::FaultThresholds;
use mfp_ml::model::Algorithm;
use mfp_sim::config::FleetConfig;
use mfp_sim::fleet::simulate_fleet;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "memfault — memory failure prediction across CPU architectures

USAGE:
    memfault simulate [--scale N] [--seed N] [--out FILE]
        Simulate a fleet and write the BMC log (binary wire format).

    memfault analyze [--scale N] [--seed N]
        Simulate and print the paper's analyses (Table I, Fig 4 summary).

    memfault predict [--scale N] [--seed N] [--platform purley|whitley|k920]
                     [--algo risky|rf|lightgbm|ft]
        Train a failure predictor and print DIMM-level metrics.

Everything is deterministic in --seed. --scale divides the paper's
population (default 50 => a 1:50 fleet, seconds to simulate)."
    );
    ExitCode::FAILURE
}

struct Args {
    scale: f64,
    seed: u64,
    out: Option<String>,
    platform: Platform,
    algo: Algorithm,
}

fn parse(args: &[String]) -> Option<Args> {
    let mut out = Args {
        scale: 50.0,
        seed: 42,
        out: None,
        platform: Platform::IntelPurley,
        algo: Algorithm::LightGbm,
    };
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        let val = args.get(i + 1);
        match key {
            "--scale" => out.scale = val?.parse().ok()?,
            "--seed" => out.seed = val?.parse().ok()?,
            "--out" => out.out = Some(val?.clone()),
            "--platform" => {
                out.platform = match val?.as_str() {
                    "purley" => Platform::IntelPurley,
                    "whitley" => Platform::IntelWhitley,
                    "k920" => Platform::K920,
                    _ => return None,
                }
            }
            "--algo" => {
                out.algo = match val?.as_str() {
                    "risky" => Algorithm::RiskyCePattern,
                    "rf" => Algorithm::RandomForest,
                    "lightgbm" => Algorithm::LightGbm,
                    "ft" => Algorithm::FtTransformer,
                    _ => return None,
                }
            }
            _ => return None,
        }
        i += 2;
    }
    Some(out)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Hidden worker mode: a ProcSupervisor re-execs this binary with
    // `--shard-worker` (and the env marker) to host one shard behind
    // the MFP1 pipe protocol. Never part of the user-facing CLI.
    if std::env::var_os(mfp_mlops::procserve::WORKER_ENV).is_some()
        || argv.first().map(String::as_str) == Some("--shard-worker")
    {
        std::process::exit(mfp_mlops::procserve::shard_worker_main());
    }
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let Some(args) = parse(rest) else {
        return usage();
    };

    match cmd.as_str() {
        "simulate" => {
            eprintln!("simulating 1:{:.0} fleet (seed {})...", args.scale, args.seed);
            let fleet = simulate_fleet(&FleetConfig::calibrated(args.scale, args.seed));
            let (ces, ues, storms) = fleet.log.counts();
            println!(
                "{} DIMMs, {} events ({ces} CE, {ues} UE, {storms} storms)",
                fleet.dimms.len(),
                fleet.log.len()
            );
            if let Some(path) = &args.out {
                let bytes = fleet.log.encode();
                if let Err(e) = std::fs::write(path, &bytes) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {} bytes to {path}", bytes.len());
            }
            ExitCode::SUCCESS
        }
        "analyze" => {
            let fleet = simulate_fleet(&FleetConfig::calibrated(args.scale, args.seed));
            println!("== Table I ==");
            for row in dataset_summary(&fleet, SimDuration::hours(3)) {
                println!(
                    "{:<14} CE DIMMs {:<6} UE DIMMs {:<5} predictable {:>3.0}% sudden {:>3.0}%",
                    row.platform.to_string(),
                    row.dimms_with_ces,
                    row.dimms_with_ues,
                    row.predictable_pct,
                    row.sudden_pct
                );
            }
            println!("\n== Fig 4 (UE rate by fault mode) ==");
            for pr in relative_ue_by_fault_mode(&fleet, &FaultThresholds::default()) {
                print!("{:<14}", pr.platform.to_string());
                for (label, _, _, pct) in &pr.rates {
                    print!(" {label}={pct:.1}%");
                }
                println!();
            }
            ExitCode::SUCCESS
        }
        "predict" => {
            eprintln!(
                "simulating 1:{:.0} fleet and training {} on {}...",
                args.scale,
                args.algo.label(),
                args.platform
            );
            let fleet = simulate_fleet(&FleetConfig::calibrated(args.scale, args.seed));
            let cfg = ExperimentConfig::default();
            let splits = build_splits(&fleet, args.platform, &cfg);
            let res = evaluate_algorithm(args.algo, &splits, args.platform, &cfg);
            let e = res.evaluation;
            println!(
                "{} on {}: precision {:.2} recall {:.2} F1 {:.2} VIRR {:.2} (tp={} fp={} fn={})",
                args.algo.label(),
                args.platform,
                e.precision,
                e.recall,
                e.f1,
                e.virr,
                e.confusion.tp,
                e.confusion.fp,
                e.confusion.fn_
            );
            ExitCode::SUCCESS
        }
        "decode" => {
            // Undocumented helper: validate a BMC log file.
            let Some(path) = args.out.as_ref() else {
                eprintln!("decode requires --out FILE");
                return ExitCode::FAILURE;
            };
            match std::fs::read(path).map(|b| BmcLog::decode(&b)) {
                Ok(Ok(log)) => {
                    let (ces, ues, storms) = log.counts();
                    println!("{}: {} events ({ces} CE, {ues} UE, {storms} storms)", path, log.len());
                    ExitCode::SUCCESS
                }
                Ok(Err(e)) => {
                    eprintln!("decode error: {e}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
